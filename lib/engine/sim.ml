type task = {
  time : Time.ns;
  seq : int;
  run : unit -> unit;
}

type t = {
  uid : int;  (* process-unique: lets side tables key off a simulation *)
  heap : task Heap.t;
  mutable now : Time.ns;
  mutable seq : int;
  mutable live : int;
  mutable blocked : int;
  mutable stopped : bool;
  mutable executed : int;
}

exception Fiber_failure of string * exn

let compare_task a b =
  let c = compare a.time b.time in
  if c <> 0 then c else compare a.seq b.seq

let next_uid = ref 0

let create () =
  incr next_uid;
  {
    uid = !next_uid;
    heap = Heap.create ~cmp:compare_task;
    now = 0;
    seq = 0;
    live = 0;
    blocked = 0;
    stopped = false;
    executed = 0;
  }

let uid t = t.uid
let now t = t.now
let blocked_fibers t = t.blocked
let live_fibers t = t.live
let events_executed t = t.executed
let stop t = t.stopped <- true

let schedule t ~time run =
  if time < t.now then invalid_arg "Sim: scheduling in the past";
  t.seq <- t.seq + 1;
  Heap.push t.heap { time; seq = t.seq; run }

let at t time run = schedule t ~time run

type _ Effect.t +=
  | Delay : t * Time.ns -> unit Effect.t
  | Suspend : t * ((unit -> unit) -> unit) -> unit Effect.t

let delay t d = if d > 0 then Effect.perform (Delay (t, d))
let suspend t register = Effect.perform (Suspend (t, register))

let run_fiber t name f =
  let open Effect.Deep in
  let body () =
    (try f ()
     with e ->
       t.live <- t.live - 1;
       raise (Fiber_failure (name, e)));
    t.live <- t.live - 1
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Delay (t', d) ->
      Some
        (fun k ->
          assert (t' == t);
          schedule t ~time:(t.now + d) (fun () -> continue k ()))
    | Suspend (t', register) ->
      Some
        (fun k ->
          assert (t' == t);
          t.blocked <- t.blocked + 1;
          let resumed = ref false in
          let resume () =
            if not !resumed then begin
              resumed := true;
              t.blocked <- t.blocked - 1;
              schedule t ~time:t.now (fun () -> continue k ())
            end
          in
          register resume)
    | _ -> None
  in
  match_with body () { retc = Fun.id; exnc = raise; effc }

let spawn_at t ?(name = "fiber") time f =
  t.live <- t.live + 1;
  schedule t ~time (fun () -> run_fiber t name f)

let spawn t ?name f = spawn_at t ?name t.now f

let run ?until t =
  t.stopped <- false;
  let result = ref `Quiescent in
  let running = ref true in
  while !running do
    if t.stopped then begin
      result := `Stopped;
      running := false
    end
    else
      match Heap.peek t.heap with
      | None ->
        result := `Quiescent;
        running := false
      | Some task -> (
        match until with
        | Some limit when task.time > limit ->
          t.now <- limit;
          result := `Time_limit;
          running := false
        | _ ->
          ignore (Heap.pop t.heap);
          t.now <- task.time;
          t.executed <- t.executed + 1;
          task.run ())
  done;
  !result
