type task = {
  time : Time.ns;
  pri : int;  (* tie-break priority among same-timestamp tasks *)
  seq : int;
  run : unit -> unit;
}

(* Same-timestamp dispatch order. FIFO gives every task the same
   priority, so the [seq] fallback reproduces strict scheduling order;
   the seeded shuffle draws a random priority per task, perturbing the
   order of simultaneous events only — the race detector's schedule
   perturbation (timestamps themselves never move). *)
type tiebreak =
  | Fifo
  | Shuffle of Rng.t

type park = {
  pk_fiber : string;
  pk_label : string;
  pk_since : Time.ns;
  pk_daemon : bool;
}

type parked = {
  fiber : string;
  label : string;
  since : Time.ns;
  daemon : bool;
}

type t = {
  uid : int;  (* process-unique: lets side tables key off a simulation *)
  heap : task Heap.t;
  mutable now : Time.ns;
  mutable seq : int;
  mutable live : int;
  mutable blocked : int;
  mutable stopped : bool;
  mutable executed : int;
  mutable tiebreak : tiebreak;
  mutable cur_fiber : string;
  parked : (int, park) Hashtbl.t;
  mutable next_park : int;
}

exception Fiber_failure of string * exn

let compare_task a b =
  let c = compare a.time b.time in
  if c <> 0 then c
  else
    let c = compare a.pri b.pri in
    if c <> 0 then c else compare a.seq b.seq

let next_uid = ref 0

let create () =
  incr next_uid;
  {
    uid = !next_uid;
    heap = Heap.create ~cmp:compare_task;
    now = 0;
    seq = 0;
    live = 0;
    blocked = 0;
    stopped = false;
    executed = 0;
    tiebreak = Fifo;
    cur_fiber = "main";
    parked = Hashtbl.create 16;
    next_park = 0;
  }

let uid t = t.uid
let now t = t.now
let blocked_fibers t = t.blocked
let live_fibers t = t.live
let events_executed t = t.executed
let stop t = t.stopped <- true
let current_fiber t = t.cur_fiber

let set_tiebreak t = function
  | `Fifo -> t.tiebreak <- Fifo
  | `Seeded_shuffle seed -> t.tiebreak <- Shuffle (Rng.create ~seed)

let blocked_report t =
  Hashtbl.fold
    (fun _ p acc ->
      { fiber = p.pk_fiber; label = p.pk_label; since = p.pk_since;
        daemon = p.pk_daemon }
      :: acc)
    t.parked []
  |> List.sort (fun a b ->
         let c = compare a.since b.since in
         if c <> 0 then c
         else
           let c = compare a.fiber b.fiber in
           if c <> 0 then c else compare a.label b.label)

let schedule t ~time run =
  if time < t.now then invalid_arg "Sim: scheduling in the past";
  t.seq <- t.seq + 1;
  let pri =
    match t.tiebreak with Fifo -> 0 | Shuffle rng -> Rng.int rng 0x4000_0000
  in
  Heap.push t.heap { time; pri; seq = t.seq; run }

let at t time run = schedule t ~time run

type _ Effect.t +=
  | Delay : t * Time.ns -> unit Effect.t
  | Suspend : t * string * ((unit -> unit) -> unit) -> unit Effect.t

let delay t d = if d > 0 then Effect.perform (Delay (t, d))

let suspend t ?(label = "suspend") register =
  Effect.perform (Suspend (t, label, register))

let run_fiber t ~daemon name f =
  let open Effect.Deep in
  (* Exactly-once exit bookkeeping, shared by the normal return, an
     uncaught exception in the fiber body, and a failure inside a
     suspend registration — so [live] can never go stale on the failure
     path. *)
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      t.live <- t.live - 1
    end
  in
  let body () =
    t.cur_fiber <- name;
    (try f ()
     with e ->
       finish ();
       raise (Fiber_failure (name, e)));
    finish ()
  in
  let effc : type a. a Effect.t -> ((a, unit) continuation -> unit) option =
    function
    | Delay (t', d) ->
      Some
        (fun k ->
          assert (t' == t);
          schedule t ~time:(t.now + d) (fun () ->
              t.cur_fiber <- name;
              continue k ()))
    | Suspend (t', label, register) ->
      Some
        (fun k ->
          assert (t' == t);
          t.blocked <- t.blocked + 1;
          t.next_park <- t.next_park + 1;
          let park_id = t.next_park in
          Hashtbl.replace t.parked park_id
            { pk_fiber = name; pk_label = label; pk_since = t.now;
              pk_daemon = daemon };
          let resumed = ref false in
          let unpark () =
            resumed := true;
            t.blocked <- t.blocked - 1;
            Hashtbl.remove t.parked park_id
          in
          let resume () =
            if not !resumed then begin
              unpark ();
              schedule t ~time:t.now (fun () ->
                  t.cur_fiber <- name;
                  continue k ())
            end
          in
          (* If registration itself raises, the fiber can never be
             resumed: undo the parking bookkeeping and account the fiber
             as dead before the exception escapes, or [blocked] (and
             [live]) would stay stale forever. *)
          match register resume with
          | () -> ()
          | exception e ->
            if not !resumed then unpark ();
            finish ();
            raise (Fiber_failure (name, e)))
    | _ -> None
  in
  match_with body () { retc = Fun.id; exnc = raise; effc }

let spawn_at t ?(name = "fiber") ?(daemon = false) time f =
  t.live <- t.live + 1;
  schedule t ~time (fun () -> run_fiber t ~daemon name f)

let spawn t ?name ?daemon f = spawn_at t ?name ?daemon t.now f

let run ?until t =
  t.stopped <- false;
  let result = ref `Quiescent in
  let running = ref true in
  while !running do
    if t.stopped then begin
      result := `Stopped;
      running := false
    end
    else
      match Heap.peek t.heap with
      | None ->
        result := `Quiescent;
        running := false
      | Some task -> (
        match until with
        | Some limit when task.time > limit ->
          t.now <- limit;
          result := `Time_limit;
          running := false
        | _ ->
          ignore (Heap.pop t.heap);
          t.now <- task.time;
          t.executed <- t.executed + 1;
          task.run ())
  done;
  !result
