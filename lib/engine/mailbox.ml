type 'a t = {
  sim : Sim.t;
  uid : int;  (* sync identity for happens-before tracking *)
  label : string;
  queue : 'a Queue.t;
  nonempty : Cond.t;
}

let create ?(label = "mailbox") sim =
  { sim; uid = Sim.new_sync_uid sim; label; queue = Queue.create ();
    nonempty = Cond.create ~label sim }

let send t v =
  Sim.note_op t.sim Op_mailbox_send t.uid t.label;
  Queue.push v t.queue;
  Cond.signal t.nonempty

let try_recv t =
  match Queue.take_opt t.queue with
  | None -> None
  | Some _ as r ->
    Sim.note_op t.sim Op_mailbox_recv t.uid t.label;
    r
let peek t = Queue.peek_opt t.queue
let length t = Queue.length t.queue
let is_empty t = Queue.is_empty t.queue

(* A waiter woken by [send] may find the queue already drained by another
   fiber that called [recv] in between; both loops re-check. *)

let rec recv t =
  match Queue.take_opt t.queue with
  | Some v ->
    Sim.note_op t.sim Op_mailbox_recv t.uid t.label;
    v
  | None ->
    Cond.wait t.nonempty;
    recv t

let recv_timeout t timeout =
  let deadline = Sim.now t.sim + timeout in
  let rec loop () =
    match try_recv t with
    | Some v -> Some v
    | None ->
      let remaining = deadline - Sim.now t.sim in
      if remaining <= 0 then None
      else
        match Cond.wait_timeout t.nonempty remaining with
        | `Timeout -> try_recv t
        | `Ok -> loop ()
  in
  loop ()
