(** One EMP endpoint: the user-space host library plus the NIC-resident
    firmware protocol of EMP (§2 of the paper), running over a
    {!Uls_nic.Tigon} NIC.

    Sends and receives are descriptor-based and tag-matched on the NIC.
    A receive descriptor must be posted before (or shortly after) the
    message arrives; unmatched frames go to the unexpected queue if
    provisioned, otherwise they are dropped and recovered by sender
    retransmission. Completion of a send means every frame has been
    acknowledged by the receiving NIC (EMP is zero-copy: the user buffer
    is live until then). *)

type t

type config = {
  ack_window : int;  (** frames per protocol ack (paper: 4) *)
  tx_window : int;  (** max unacked frames in flight per message *)
  rto : Uls_engine.Time.ns;  (** initial retransmission timeout *)
  max_rto : Uls_engine.Time.ns;
      (** backoff ceiling for the doubling RTO. Must cover the worst-case
          receive-side queueing delay: under incast (many senders, one
          receiver) the receiving NIC serializes tag-match walks, and a
          ceiling below that delay turns congestion into spurious
          retransmission storms and eventually [Send_failed]. *)
  max_retries : int;
  use_nacks : bool;
      (** send a NACK frame when a receive gap is detected, so the
          sender rewinds immediately instead of waiting out its RTO *)
}

val default_config : config

val create : ?config:config -> Uls_host.Node.t -> Uls_nic.Tigon.t -> t
val node : t -> Uls_host.Node.t
val nic : t -> Uls_nic.Tigon.t
val node_id : t -> int
val sim : t -> Uls_engine.Sim.t
val config : t -> config

(** {1 Sending} *)

type send

exception Send_failed of { dst : int; tag : int; retries : int }

val post_send :
  t -> dst:int -> tag:int -> Uls_host.Memory.region -> off:int -> len:int -> send
(** Post a transmit descriptor (T1–T2: descriptor build, pin/translate
    via the OS translation cache, doorbell). Returns immediately; the
    NIC-side transmit proceeds concurrently. Caller must be a fiber. *)

val send_done : send -> bool

val send_failed : send -> bool
(** The send exhausted its retries and was abandoned (the sanitizer's
    send-pool leak scan distinguishes failed from leaked slots). *)

val wait_send : t -> send -> unit
(** Block until fully acknowledged. @raise Send_failed after
    [max_retries] unacknowledged retransmission rounds. *)

(** {1 Batched submission (tx ring)} *)

val get_tx_ring :
  ?mode:Uls_rings.Ringpair.mode -> ?capacity:int -> t -> (send, send) Uls_rings.Ringpair.t
(** The endpoint's submission/completion ring pair, created on first
    use. [mode] and [capacity] only apply at creation; later calls
    return the existing ring unchanged. *)

val post_sendv :
  ?mode:Uls_rings.Ringpair.mode ->
  t ->
  (int * int * Uls_host.Memory.region * int * int) list ->
  send list
(** Batched {!post_send}: each element is [(dst, tag, region, off,
    len)]. One [emp_host_post] and one doorbell cover the whole batch;
    each descriptor is a cached [ring_slot_post] write, fetched by the
    NIC under a single [nic_doorbell_batch] charge. A singleton list
    degenerates to {!post_send} exactly (the batch=1 ablation is
    byte-identical to the per-call path). Caller must be a fiber. *)

val reap_sent : ?max:int -> t -> send list
(** Drain completed ring sends from the completion ring in bulk
    ([emp_host_reap] for the first + [ring_reap_slot] each additional),
    non-blocking. Sends already accounted by {!wait_send} are filtered
    out. Returns [[]] when the endpoint never used the ring. *)

val tx_ring_stats : t -> Uls_rings.Ringpair.stats option

val set_send_failure_handler :
  t -> (dst:int -> tag:int -> retries:int -> unit) -> unit
(** Called (from the transmit fiber) whenever a posted send exhausts its
    retries, whether or not anyone is blocked in {!wait_send} — the
    substrate uses it to reset the owning connection. One handler per
    endpoint; default is a no-op. *)

(** {1 Receiving} *)

type recv

val post_recv :
  t ->
  src:int ->
  tag:int ->
  Uls_host.Memory.region ->
  off:int ->
  len:int ->
  recv
(** Post a receive descriptor ([src] and/or [tag] may be [-1] as a
    wildcard). If a matching message already sits complete in the
    unexpected queue it is consumed immediately (host-side copy). *)

val post_recv_batch :
  t ->
  (int * int * Uls_host.Memory.region * int * int) list ->
  recv list
(** Batched {!post_recv} — the fill-ring path; elements are [(src, tag,
    region, off, len)]. Descriptors are matchable immediately, exactly
    as with {!post_recv}; the batch amortizes the host post, the
    doorbell, and the NIC's descriptor fetch (one [nic_doorbell_batch] +
    k·[nic_ring_slot_fetch] per involved receive queue). A singleton
    list degenerates to {!post_recv} exactly. *)

val recv_done : recv -> bool
val wait_recv : t -> recv -> int * int * int
(** Block until the message has fully arrived; returns
    [(length, source node, tag)]. *)

val recv_result : recv -> (int * int * int) option

val wait_recv_timeout : t -> recv -> Uls_engine.Time.ns -> (int * int * int) option
(** Like {!wait_recv} but gives up after the timeout (connection
    establishment uses this to detect refusal). The descriptor stays
    posted on [None]. *)

val unpost_recv : t -> recv -> bool
(** Remove a not-yet-matched descriptor (resource reclamation on socket
    close). Returns [false] if the descriptor already matched a message.
    A successfully cancelled receive completes with length [-1], so any
    fiber blocked in {!wait_recv} unwinds and can test for the sentinel. *)

(** {1 Unexpected queue} *)

val provision_unexpected : t -> slots:int -> size:int -> unit
(** Add NIC-managed unexpected-queue descriptors, each backed by a
    temporary host buffer of [size] bytes. Checked last in tag matching. *)

val uq_has_match : t -> src:int -> tag:int -> bool
(** A complete message matching [src]/[tag] sits in the unexpected
    queue (a subsequent {!post_recv} would consume it immediately). *)

val uq_arrival_cond : t -> Uls_engine.Cond.t
(** Broadcast whenever a message completes into the unexpected queue. *)

val uq_take : t -> pred:(src:int -> tag:int -> bool) -> (string * int * int) option
(** Remove the first complete unexpected-queue message satisfying [pred]
    and return [(payload, src, tag)], freeing its slot. The substrate's
    refusal scanner uses this to answer connection requests aimed at
    ports nobody listens on. *)

val reset : t -> unit
(** EMP state reset (new application): unposts everything. *)

(** {1 Statistics} *)

type stats = {
  messages_sent : int;
  messages_received : int;
  frames_sent : int;
  frames_retransmitted : int;
  frames_dropped_no_descriptor : int;
  protocol_acks_sent : int;
  unexpected_queue_hits : int;
  descriptor_walk_total : int;  (** descriptors walked by tag matching *)
  nacks_sent : int;
}

val stats : t -> stats
val posted_descriptors : t -> int

type desc_stats = {
  descs_posted : int;  (** receive descriptors ever posted *)
  descs_completed : int;
      (** completed deliveries, including the [-1] cancel sentinel and
          descriptors torn down by {!reset} *)
  descs_live : int;  (** still waiting on the match list *)
}

val descriptor_stats : t -> desc_stats
(** Conservation law checked by the descriptor-leak sanitizer: at
    quiescence [descs_posted = descs_completed + descs_live], and after
    every endpoint is closed [descs_live = 0]. *)
