open Uls_engine
open Uls_host
open Uls_nic

type config = {
  ack_window : int;
  tx_window : int;
  rto : Time.ns;
  max_rto : Time.ns;
  max_retries : int;
  use_nacks : bool;  (* gap-triggered NACK frames for fast loss recovery *)
}

let default_config =
  { ack_window = 4; tx_window = 64; rto = Time.ms 2; max_rto = Time.ms 200;
    max_retries = 20; use_nacks = true }

type send = {
  s_key : Wire.msg_key;
  s_dst : int;
  s_tag : int;
  s_region : Memory.region;
  s_off : int;
  s_len : int;
  s_nframes : int;
  mutable s_acked : int; (* cumulative frames acked *)
  mutable s_next : int; (* next frame index to transmit *)
  mutable s_retries : int;
  mutable s_rto : Time.ns;
  mutable s_done : bool;
  mutable s_failed : bool;
  mutable s_ring : bool;  (* submitted through the tx ring *)
  mutable s_reaped : bool;  (* completion charge already paid *)
  s_span : int;  (* trace span: open from post to full acknowledgment *)
  s_cond : Cond.t;
}

type recv = {
  r_want_src : int;
  r_want_tag : int;
  r_region : Memory.region;
  r_off : int;
  r_cap : int;
  mutable r_len : int;
  mutable r_from : int;
  mutable r_tag : int;
  mutable r_matched : bool;
  mutable r_done : bool;
  mutable r_cancelled : bool;
  r_cond : Cond.t;
}

type uq_slot = {
  u_buf : Memory.region;
  u_size : int;
  mutable u_len : int;
  mutable u_from : int;
  mutable u_tag : int;
  mutable u_state : [ `Free | `Filling | `Arrived ];
  mutable u_born : Time.ns;
}

type rx_dst =
  | To_user of recv
  | To_uq of uq_slot

type rx_record = {
  rec_dst : rx_dst;
  rec_nframes : int;
  rec_total : int;
  rec_src : int;
  rec_tag : int;
  rec_got : bool array;
  mutable rec_count : int;
  mutable rec_prefix : int; (* contiguous frames received from 0 *)
  mutable rec_nacked : bool; (* a NACK for the current gap is outstanding *)
}

type stats = {
  messages_sent : int;
  messages_received : int;
  frames_sent : int;
  frames_retransmitted : int;
  frames_dropped_no_descriptor : int;
  protocol_acks_sent : int;
  unexpected_queue_hits : int;
  descriptor_walk_total : int;
  nacks_sent : int;
}

type desc_stats = {
  descs_posted : int;  (* receive descriptors ever posted *)
  descs_completed : int;  (* completed, including cancel sentinels *)
  descs_live : int;  (* still on the match list *)
}

(* Metric handles resolved once at create: the hot path bumps a counter
   cell directly instead of paying a name→key hash lookup (and a boxed
   key allocation) per event. *)
type handles = {
  h_frames_sent : Stats.Counter.t;
  h_send_failures : Stats.Counter.t;
  h_frames_retransmitted : Stats.Counter.t;
  h_messages_sent : Stats.Counter.t;
  h_uq_hits : Stats.Counter.t;
  h_match_walk_descs : Stats.Summary.t;
  h_messages_received : Stats.Counter.t;
  h_drops_no_descriptor : Stats.Counter.t;
  h_nacks_sent : Stats.Counter.t;
}

type t = {
  node : Node.t;
  nic : Tigon.t;
  cfg : config;
  metrics : Metrics.t;
  mh : handles;
  trace : Trace.t;
  inv : Invariant.t;
  mutable next_msg_id : int;
  posted : recv Match_list.t;
  uq : uq_slot Vec.t;
  active_rx : (Wire.msg_key, rx_record) Hashtbl.t;
  finished_rx : (Wire.msg_key, int) Hashtbl.t; (* nframes, for dup re-acks *)
  active_tx : (Wire.msg_key, send) Hashtbl.t;
  (* One mailbox + dispatcher fiber per NIC receive queue: frames are
     RSS-steered by source node, so each peer's traffic is handled by a
     fixed queue and per-message state stays single-fiber. *)
  rx_queues : Uls_ether.Frame.t Mailbox.t array;
  uq_arrival : Cond.t;
  (* Batched I/O: one submission/completion ring pair per endpoint (the
     connection group), created on first use. *)
  mutable tx_ring : (send, send) Uls_rings.Ringpair.t option;
  mutable on_send_failure : dst:int -> tag:int -> retries:int -> unit;
  mutable st_msgs_sent : int;
  mutable st_msgs_recv : int;
  mutable st_frames_sent : int;
  mutable st_retrans : int;
  mutable st_drops : int;
  mutable st_acks : int;
  mutable st_uq_hits : int;
  mutable st_walked : int;
  mutable st_nacks : int;
  mutable st_desc_posted : int;
  mutable st_desc_completed : int;
}

exception Send_failed of { dst : int; tag : int; retries : int }

let node t = t.node
let nic t = t.nic
let node_id t = Node.id t.node
let sim t = Node.sim t.node
let config t = t.cfg
let model t = Node.model t.node

let posted_descriptors t = Match_list.length t.posted

let descriptor_stats t =
  {
    descs_posted = t.st_desc_posted;
    descs_completed = t.st_desc_completed;
    descs_live = Match_list.length t.posted;
  }

let stats t =
  {
    messages_sent = t.st_msgs_sent;
    messages_received = t.st_msgs_recv;
    frames_sent = t.st_frames_sent;
    frames_retransmitted = t.st_retrans;
    frames_dropped_no_descriptor = t.st_drops;
    protocol_acks_sent = t.st_acks;
    unexpected_queue_hits = t.st_uq_hits;
    descriptor_walk_total = t.st_walked;
    nacks_sent = t.st_nacks;
  }

(* ------------------------------------------------------------------ *)
(* Transmit side                                                       *)
(* ------------------------------------------------------------------ *)

let chunk_of st idx =
  if st.s_len = 0 then ""
  else begin
    let per = Wire.max_data_per_frame in
    let start = idx * per in
    let len = min per (st.s_len - start) in
    Memory.sub_string st.s_region ~off:(st.s_off + start) ~len
  end

let send_frame t st idx =
  let chunk = chunk_of st idx in
  (* Ring-submitted sends are gather-DMA: frames queued behind an
     in-progress transfer ride the burst (no per-frame setup). Mailbox
     sends keep the one-transaction-per-frame charge. *)
  Tigon.dma ~pipelined:st.s_ring t.nic ~bytes:(String.length chunk);
  Tigon.tx_work t.nic (model t).Cost_model.nic_tx_per_frame;
  let data =
    {
      Wire.key = st.s_key;
      tag = st.s_tag;
      frame_idx = idx;
      nframes = st.s_nframes;
      total_len = st.s_len;
      chunk;
    }
  in
  Tigon.transmit t.nic (Wire.data_frame ~src:(node_id t) ~dst:st.s_dst data);
  t.st_frames_sent <- t.st_frames_sent + 1;
  Stats.Counter.incr t.mh.h_frames_sent

let fail_send t st =
  st.s_failed <- true;
  Hashtbl.remove t.active_tx st.s_key;
  Stats.Counter.incr t.mh.h_send_failures;
  Trace.span_end t.trace ~layer:Trace.Emp ~node:(node_id t) "emp.send"
    ~args:[ ("outcome", "failed") ]
    st.s_span;
  Cond.broadcast st.s_cond;
  (if st.s_ring then
     match t.tx_ring with
     | Some rp -> Uls_rings.Ringpair.complete rp st
     | None -> ());
  (* Tell the layer above (the substrate maps the tag back to its
     connection and resets it) — not every failed send has a fiber
     parked in [wait_send] to observe the failure. *)
  t.on_send_failure ~dst:st.s_dst ~tag:st.s_tag ~retries:st.s_retries

(* The single transmit fiber of a message: streams frames subject to the
   in-flight window, then waits for full acknowledgment, rewinding to the
   cumulative ack (go-back-N) whenever the RTO expires. *)
let tx_fiber ?(ring_fed = false) t st () =
  let m = model t in
  (* Ring-fed sends already paid their descriptor fetch as part of the
     batched [nic_doorbell_batch] + [nic_ring_slot_fetch] charge in the
     ring's fetch fiber; the fixed-format slot also subsumes the
     per-message descriptor parse, so nothing more is charged here. *)
  if not ring_fed then begin
    Tigon.count_mailbox_fetch t.nic;
    Tigon.tx_work t.nic
      (m.Cost_model.nic_mailbox_fetch + m.Cost_model.nic_tx_per_msg)
  end;
  let give_up () =
    st.s_retries >= t.cfg.max_retries
  in
  let rewind () =
    st.s_retries <- st.s_retries + 1;
    if not (give_up ()) then begin
      t.st_retrans <- t.st_retrans + (st.s_next - st.s_acked);
      Stats.Counter.add t.mh.h_frames_retransmitted (st.s_next - st.s_acked);
      Trace.instant t.trace ~layer:Trace.Emp ~node:(node_id t) "emp.rto_rewind"
        ~args:[ ("frames", string_of_int (st.s_next - st.s_acked)) ];
      st.s_next <- st.s_acked;
      st.s_rto <- min (2 * st.s_rto) t.cfg.max_rto
    end
  in
  let rec drive () =
    if st.s_failed || st.s_done then ()
    else if give_up () then fail_send t st
    else if st.s_next < st.s_nframes then
      if st.s_next - st.s_acked >= t.cfg.tx_window then begin
        (* Window full: wait for ack progress. *)
        let before = st.s_acked in
        (match Cond.wait_timeout st.s_cond st.s_rto with
        | `Ok -> ()
        | `Timeout -> if st.s_acked = before then rewind ());
        drive ()
      end
      else begin
        let idx = st.s_next in
        st.s_next <- idx + 1;
        send_frame t st idx;
        drive ()
      end
    else begin
      (* Everything transmitted: await completion. *)
      let before = st.s_acked in
      (match Cond.wait_timeout st.s_cond st.s_rto with
      | `Ok -> ()
      | `Timeout -> if st.s_acked = before && not st.s_done then rewind ());
      drive ()
    end
  in
  drive ()

let make_send t ~dst ~tag region ~off ~len =
  if len < 0 || off < 0 || off + len > Memory.length region then
    invalid_arg "Endpoint.post_send: bad range";
  t.next_msg_id <- t.next_msg_id + 1;
  let st =
    {
      s_key = { Wire.src_node = node_id t; msg_id = t.next_msg_id };
      s_dst = dst;
      s_tag = tag;
      s_region = region;
      s_off = off;
      s_len = len;
      s_nframes = Wire.frames_for len;
      s_acked = 0;
      s_next = 0;
      s_retries = 0;
      s_rto = t.cfg.rto;
      s_done = false;
      s_failed = false;
      s_ring = false;
      s_reaped = false;
      s_span =
        Trace.span_begin t.trace ~layer:Trace.Emp ~node:(node_id t)
          ~seq:t.next_msg_id "emp.send"
          ~args:[ ("len", string_of_int len) ];
      s_cond = Cond.create ~label:"emp:send" (sim t);
    }
  in
  Hashtbl.replace t.active_tx st.s_key st;
  t.st_msgs_sent <- t.st_msgs_sent + 1;
  Stats.Counter.incr t.mh.h_messages_sent;
  st

let post_send t ~dst ~tag region ~off ~len =
  if len < 0 || off < 0 || off + len > Memory.length region then
    invalid_arg "Endpoint.post_send: bad range";
  let m = model t in
  Sim.delay (sim t) m.Cost_model.emp_host_post;
  Os.pin_region (Node.os t.node) region ~off ~len;
  Tigon.doorbell t.nic;
  let st = make_send t ~dst ~tag region ~off ~len in
  Sim.spawn (sim t) ~name:"emp-tx" (tx_fiber t st);
  st

let send_done st = st.s_done
let send_failed st = st.s_failed

let wait_send t st =
  Cond.wait_until st.s_cond (fun () -> st.s_done || st.s_failed);
  if st.s_failed then
    raise (Send_failed { dst = st.s_dst; tag = st.s_tag; retries = st.s_retries });
  (* A ring-submitted send may already have been reaped in bulk from the
     completion ring; don't bill the completion twice. *)
  if not st.s_reaped then begin
    st.s_reaped <- true;
    Sim.delay (sim t) (model t).Cost_model.emp_host_reap
  end

(* ------------------------------------------------------------------ *)
(* Batched submission: the per-endpoint tx ring                        *)
(* ------------------------------------------------------------------ *)

let dummy_send t =
  {
    s_key = { Wire.src_node = node_id t; msg_id = -1 };
    s_dst = -1;
    s_tag = -1;
    s_region = Memory.alloc 1;
    s_off = 0;
    s_len = 0;
    s_nframes = 0;
    s_acked = 0;
    s_next = 0;
    s_retries = 0;
    s_rto = t.cfg.rto;
    s_done = true;
    s_failed = false;
    s_ring = false;
    s_reaped = true;
    s_span = 0;
    s_cond = Cond.create ~label:"emp:send-dummy" (sim t);
  }

let get_tx_ring ?(mode = Uls_rings.Ringpair.Wakeup) ?(capacity = 1024) t =
  match t.tx_ring with
  | Some rp -> rp
  | None ->
    let d = dummy_send t in
    let rp =
      Uls_rings.Ringpair.create ~mode ~sq_capacity:capacity
        ~cq_capacity:capacity
        ~label:(Printf.sprintf "emp%d-txring" (node_id t))
        ~on_doorbell:(fun () -> Tigon.count_doorbell t.nic)
        ~on_fetch:(fun _n -> Tigon.count_mailbox_fetch t.nic)
        ~on_cq_flush:(fun k -> Tigon.dma ~pipelined:true t.nic ~bytes:(8 * k))
        (sim t) ~model:(model t)
        ~nic_cpu:(Tigon.tx_cpu t.nic)
        ~dummy_sub:d ~dummy_comp:d
        ~consume:(fun st ->
          Sim.spawn (sim t) ~name:"emp-tx" (tx_fiber ~ring_fed:true t st))
        ()
    in
    t.tx_ring <- Some rp;
    rp

(* Batched send: one host-post charge and one doorbell for the whole
   batch; each descriptor is a cached ring-slot write. A singleton batch
   takes the classic [post_send] path so [--batch 1] reproduces the
   per-call behaviour byte for byte. *)
let post_sendv ?mode t specs =
  match specs with
  | [] -> []
  | [ (dst, tag, region, off, len) ] ->
    [ post_send t ~dst ~tag region ~off ~len ]
  | _ ->
    let m = model t in
    let rp = get_tx_ring ?mode t in
    Sim.delay (sim t) m.Cost_model.emp_host_post;
    let sts =
      List.map
        (fun (dst, tag, region, off, len) ->
          if len < 0 || off < 0 || off + len > Memory.length region then
            invalid_arg "Endpoint.post_sendv: bad range";
          Os.pin_region (Node.os t.node) region ~off ~len;
          let st = make_send t ~dst ~tag region ~off ~len in
          st.s_ring <- true;
          ignore (Uls_rings.Ringpair.submit rp st : bool);
          st)
        specs
    in
    Uls_rings.Ringpair.ring_doorbell rp;
    sts

let reap_sent ?(max = max_int) t =
  match t.tx_ring with
  | None -> []
  | Some rp ->
    let popped = Uls_rings.Ringpair.reap rp ~max in
    List.filter
      (fun st ->
        if st.s_reaped then false
        else begin
          st.s_reaped <- true;
          true
        end)
      popped

let tx_ring_stats t =
  match t.tx_ring with
  | None -> None
  | Some rp -> Some (Uls_rings.Ringpair.stats rp)

(* ------------------------------------------------------------------ *)
(* Receive side                                                        *)
(* ------------------------------------------------------------------ *)

let recv_done r = r.r_done

let recv_result r =
  if r.r_done then Some (r.r_len, r.r_from, r.r_tag) else None

let wait_recv t r =
  Cond.wait_until r.r_cond (fun () -> r.r_done);
  Sim.delay (sim t) (model t).Cost_model.emp_host_reap;
  (r.r_len, r.r_from, r.r_tag)

let wait_recv_timeout t r timeout =
  let deadline = Sim.now (sim t) + timeout in
  let rec loop () =
    if r.r_done then begin
      Sim.delay (sim t) (model t).Cost_model.emp_host_reap;
      Some (r.r_len, r.r_from, r.r_tag)
    end
    else begin
      let remaining = deadline - Sim.now (sim t) in
      if remaining <= 0 then None
      else begin
        ignore (Cond.wait_timeout r.r_cond remaining);
        loop ()
      end
    end
  in
  loop ()

let complete_recv t r ~len ~src ~tag =
  Invariant.check t.inv ~name:"emp.desc_double_complete" (not r.r_done)
    (fun () ->
      Printf.sprintf "node %d: descriptor completed twice (src=%d tag=%d)"
        (node_id t) src tag);
  r.r_len <- len;
  r.r_from <- src;
  r.r_tag <- tag;
  r.r_done <- true;
  t.st_desc_completed <- t.st_desc_completed + 1;
  Invariant.check t.inv ~name:"emp.desc_conservation"
    (t.st_desc_completed <= t.st_desc_posted)
    (fun () ->
      Printf.sprintf "node %d: %d descriptors completed but only %d posted"
        (node_id t) t.st_desc_completed t.st_desc_posted);
  Cond.broadcast r.r_cond

(* Host-side consumption of a message that landed in the unexpected
   queue: copy into the user buffer (the extra copy the paper accepts
   for UQ traffic), then free the slot. *)
let consume_uq t slot r =
  t.st_uq_hits <- t.st_uq_hits + 1;
  Stats.Counter.incr t.mh.h_uq_hits;
  Trace.instant t.trace ~layer:Trace.Emp ~node:(node_id t) "emp.uq_consume";
  let len = min slot.u_len r.r_cap in
  r.r_matched <- true;
  let finish () =
    Node.copy t.node ~src:slot.u_buf ~src_off:0 ~dst:r.r_region ~dst_off:r.r_off
      ~len;
    let src = slot.u_from and tag = slot.u_tag in
    slot.u_state <- `Free;
    slot.u_len <- 0;
    complete_recv t r ~len ~src ~tag
  in
  Sim.spawn (sim t) ~name:"emp-uq-copy" finish

let uq_match t ~src ~tag =
  let n = Vec.length t.uq in
  let rec scan i =
    if i >= n then None
    else begin
      let slot = Vec.get t.uq i in
      if
        slot.u_state = `Arrived
        && (src = -1 || slot.u_from = src)
        && (tag = -1 || slot.u_tag = tag)
      then Some slot
      else scan (i + 1)
    end
  in
  scan 0

let make_recv t ~src ~tag region ~off ~len =
  if len < 0 || off < 0 || off + len > Memory.length region then
    invalid_arg "Endpoint.post_recv: bad range";
  let r =
    {
      r_want_src = src;
      r_want_tag = tag;
      r_region = region;
      r_off = off;
      r_cap = len;
      r_len = 0;
      r_from = -1;
      r_tag = -1;
      r_matched = false;
      r_done = false;
      r_cancelled = false;
      r_cond = Cond.create ~label:"emp:recv" (sim t);
    }
  in
  t.st_desc_posted <- t.st_desc_posted + 1;
  r

let post_recv t ~src ~tag region ~off ~len =
  if len < 0 || off < 0 || off + len > Memory.length region then
    invalid_arg "Endpoint.post_recv: bad range";
  let m = model t in
  Sim.delay (sim t) m.Cost_model.emp_host_post;
  Os.pin_region (Node.os t.node) region ~off ~len;
  let r = make_recv t ~src ~tag region ~off ~len in
  (match uq_match t ~src ~tag with
  | Some slot -> consume_uq t slot r
  | None ->
    Match_list.post t.posted ~src ~tag r;
    Tigon.doorbell t.nic;
    (* The doorbell lands on the queue that will serve this peer (queue 0
       for wildcard posts — any queue may end up matching it). *)
    let q = if src = -1 then 0 else Tigon.steer t.nic ~flow:src in
    Tigon.count_mailbox_fetch t.nic;
    ignore
      (Resource.completion_after
         (Tigon.rx_cpu ~queue:q t.nic)
         m.Cost_model.nic_mailbox_fetch));
  r

(* Batched descriptor replenish — the fill-ring path. Descriptors become
   matchable immediately (same visibility contract as [post_recv]); what
   batching changes is the cost shape: one host-post charge and one
   doorbell + [nic_doorbell_batch] mailbox fetch per involved receive
   queue, with each slot a cached [ring_slot_post] write and a cheap
   fixed-format [nic_ring_slot_fetch] on the NIC, instead of a
   [pio_write] + [nic_mailbox_fetch] per descriptor. A singleton batch
   takes the classic [post_recv] path byte for byte. *)
let post_recv_batch t specs =
  match specs with
  | [] -> []
  | [ (src, tag, region, off, len) ] ->
    [ post_recv t ~src ~tag region ~off ~len ]
  | _ ->
    let m = model t in
    Sim.delay (sim t) m.Cost_model.emp_host_post;
    let queue_counts = Array.make (Tigon.rx_queues t.nic) 0 in
    let rs =
      List.map
        (fun (src, tag, region, off, len) ->
          Sim.delay (sim t) m.Cost_model.ring_slot_post;
          Os.pin_region (Node.os t.node) region ~off ~len;
          let r = make_recv t ~src ~tag region ~off ~len in
          (match uq_match t ~src ~tag with
          | Some slot -> consume_uq t slot r
          | None ->
            Match_list.post t.posted ~src ~tag r;
            let q = if src = -1 then 0 else Tigon.steer t.nic ~flow:src in
            queue_counts.(q) <- queue_counts.(q) + 1);
          r)
        specs
    in
    Array.iteri
      (fun q k ->
        if k > 0 then begin
          Tigon.doorbell t.nic;
          Tigon.count_mailbox_fetch t.nic;
          ignore
            (Resource.completion_after
               (Tigon.rx_cpu ~queue:q t.nic)
               (m.Cost_model.nic_doorbell_batch
               + (k * m.Cost_model.nic_ring_slot_fetch)))
        end)
      queue_counts;
    rs

let unpost_recv t r =
  if r.r_matched || r.r_done then false
  else begin
    r.r_cancelled <- true;
    let removed = Match_list.unpost_matching t.posted (fun r' -> r' == r) in
    (* Cancelled receives complete with the -1 sentinel so fibers blocked
       in [wait_recv] unwind (socket close, §5.3). *)
    complete_recv t r ~len:(-1) ~src:(-1) ~tag:(-1);
    removed <> []
  end

let uq_has_match t ~src ~tag = uq_match t ~src ~tag <> None
let uq_arrival_cond t = t.uq_arrival

let uq_take t ~pred =
  let n = Vec.length t.uq in
  let rec scan i =
    if i >= n then None
    else begin
      let slot = Vec.get t.uq i in
      if slot.u_state = `Arrived && pred ~src:slot.u_from ~tag:slot.u_tag then begin
        let data = Memory.sub_string slot.u_buf ~off:0 ~len:slot.u_len in
        let src = slot.u_from and tag = slot.u_tag in
        slot.u_state <- `Free;
        slot.u_len <- 0;
        Some (data, src, tag)
      end
      else scan (i + 1)
    end
  in
  scan 0

let set_send_failure_handler t f = t.on_send_failure <- f

let provision_unexpected t ~slots ~size =
  for _ = 1 to slots do
    Vec.push t.uq
      {
        u_buf = Memory.alloc size;
        u_size = size;
        u_len = 0;
        u_from = -1;
        u_tag = -1;
        u_state = `Free;
        u_born = 0;
      }
  done

(* --- NIC receive firmware ------------------------------------------ *)

let send_protocol_ack t ~queue ~dst ~key ~acked =
  let m = model t in
  Tigon.rx_work ~queue t.nic m.Cost_model.nic_ack_gen;
  t.st_acks <- t.st_acks + 1;
  Tigon.transmit t.nic (Wire.ack_frame ~src:(node_id t) ~dst ~key ~acked)

(* The unexpected queue is a finite resource: arrived messages that
   nobody ever posts a receive for (e.g. a credit ack that raced a
   socket close) would pin their slot forever, eventually starving live
   traffic. When no slot is free, the stalest sufficiently old arrival
   is evicted — semantically, EMP drops the unexpected message. *)
let uq_stale_after = Time.ms 5

let evict_stale_uq t ~total_len =
  let now = Sim.now (sim t) in
  let best = ref None in
  Vec.iter
    (fun slot ->
      if
        slot.u_state = `Arrived
        && now - slot.u_born > uq_stale_after
        && slot.u_size >= total_len
      then
        match !best with
        | Some b when b.u_born <= slot.u_born -> ()
        | _ -> best := Some slot)
    t.uq;
  match !best with
  | Some slot ->
    slot.u_state <- `Free;
    slot.u_len <- 0;
    Some slot
  | None -> None

let free_uq_slot_for t ~total_len =
  let n = Vec.length t.uq in
  let rec scan i walked =
    if i >= n then (evict_stale_uq t ~total_len, walked)
    else begin
      let slot = Vec.get t.uq i in
      if slot.u_state = `Free && slot.u_size >= total_len then (Some slot, walked + 1)
      else scan (i + 1) (walked + 1)
    end
  in
  scan 0 0

(* Account one descriptor lookup: host stats, the legacy EMP metric, the
   canonical NIC metrics (both engines), and the firmware-time charge on
   the handling receive core. *)
(* Metric side of a descriptor lookup: the legacy emp counter plus the
   canonical nic.match_* series (every match, both engines). *)
let observe_match t (probe : Match_list.probe) =
  t.st_walked <- t.st_walked + probe.walked;
  Stats.Summary.add t.mh.h_match_walk_descs (float_of_int probe.walked);
  Tigon.observe_match t.nic probe

let charge_match t ~queue (probe : Match_list.probe) =
  observe_match t probe;
  Tigon.rx_work ~queue t.nic (Tigon.match_cost t.nic probe)

(* First frame of a message: look up the posted descriptors (charging
   the engine's match cost), falling back to the unexpected queue, which
   is checked last (paper §6.4). *)
let match_new_message t ~queue (d : Wire.data) =
  let src = d.key.Wire.src_node in
  match Match_list.take t.posted ~src ~tag:d.tag with
  | Some r, probe ->
    charge_match t ~queue probe;
    if r.r_cancelled then None
    else begin
      r.r_matched <- true;
      Some (To_user r)
    end
  | None, probe ->
    let slot, uq_walked = free_uq_slot_for t ~total_len:d.total_len in
    (* Claim the slot before any blocking charge: with two receive
       queues, another dispatcher fiber could otherwise pick the same
       free slot while this one waits for its core. *)
    (match slot with
    | Some slot ->
      slot.u_state <- `Filling;
      slot.u_from <- src;
      slot.u_tag <- d.tag;
      slot.u_len <- d.total_len;
      slot.u_born <- Sim.now (sim t)
    | None -> ());
    charge_match t ~queue
      { probe with Match_list.walked = probe.Match_list.walked + uq_walked };
    (match slot with None -> None | Some slot -> Some (To_uq slot))

let store_chunk t record (d : Wire.data) =
  let bytes = String.length d.chunk in
  let dst_off = d.frame_idx * Wire.max_data_per_frame in
  (match record.rec_dst with
  | To_user r ->
    let room = r.r_cap - dst_off in
    let n = min bytes (max 0 room) in
    if n > 0 then Memory.blit_from_string (String.sub d.chunk 0 n) r.r_region ~off:(r.r_off + dst_off)
  | To_uq slot ->
    let room = slot.u_size - dst_off in
    let n = min bytes (max 0 room) in
    if n > 0 then Memory.blit_from_string (String.sub d.chunk 0 n) slot.u_buf ~off:dst_off);
  Tigon.dma t.nic ~bytes

let finish_record t key record =
  Hashtbl.remove t.active_rx key;
  Hashtbl.replace t.finished_rx key record.rec_nframes;
  t.st_msgs_recv <- t.st_msgs_recv + 1;
  Stats.Counter.incr t.mh.h_messages_received;
  Trace.instant t.trace ~layer:Trace.Emp ~node:(node_id t) "emp.msg_complete"
    ~seq:key.Wire.msg_id
    ~args:[ ("len", string_of_int record.rec_total) ];
  match record.rec_dst with
  | To_user r ->
    complete_recv t r
      ~len:(min record.rec_total r.r_cap)
      ~src:record.rec_src ~tag:record.rec_tag
  | To_uq slot -> (
    slot.u_state <- `Arrived;
    Cond.broadcast t.uq_arrival;
    (* A descriptor posted while the message was in flight may be
       waiting; deliver to it now. The match time was already paid when
       the message arrived; this re-take is delivery bookkeeping, so it
       is observed (metrics) but not charged against the receive core. *)
    match
      Match_list.take t.posted ~src:slot.u_from ~tag:slot.u_tag
    with
    | Some r, probe ->
      observe_match t probe;
      if r.r_cancelled then ()
      else consume_uq t slot r
    | None, probe -> observe_match t probe)

let rx_data t ~queue (d : Wire.data) =
  let m = model t in
  Tigon.rx_work ~queue t.nic m.Cost_model.nic_rx_classify;
  let key = d.key in
  let record =
    match Hashtbl.find_opt t.active_rx key with
    | Some record ->
      (* Later frame: matched against the in-progress receive record. *)
      Tigon.rx_work ~queue t.nic m.Cost_model.nic_tag_match_per_desc;
      Some record
    | None ->
      if Hashtbl.mem t.finished_rx key then begin
        (* Duplicate of a completed message: re-ack so the sender stops. *)
        let nframes = Hashtbl.find t.finished_rx key in
        send_protocol_ack t ~queue ~dst:key.Wire.src_node ~key ~acked:nframes;
        None
      end
      else begin
        match match_new_message t ~queue d with
        | None ->
          t.st_drops <- t.st_drops + 1;
          Stats.Counter.incr t.mh.h_drops_no_descriptor;
          Trace.instant t.trace ~layer:Trace.Emp ~node:(node_id t) "emp.drop";
          None
        | Some dst ->
          let record =
            {
              rec_dst = dst;
              rec_nframes = d.nframes;
              rec_total = d.total_len;
              rec_src = key.Wire.src_node;
              rec_tag = d.tag;
              rec_got = Array.make d.nframes false;
              rec_count = 0;
              rec_prefix = 0;
              rec_nacked = false;
            }
          in
          Hashtbl.replace t.active_rx key record;
          Some record
      end
  in
  match record with
  | None -> ()
  | Some record ->
    if record.rec_got.(d.frame_idx) then
      (* Duplicate frame (ack loss / go-back-N overlap): re-ack the
         contiguous prefix so the sender resumes from the right point. *)
      send_protocol_ack t ~queue ~dst:key.Wire.src_node ~key
        ~acked:record.rec_prefix
    else begin
      record.rec_got.(d.frame_idx) <- true;
      record.rec_count <- record.rec_count + 1;
      let old_prefix = record.rec_prefix in
      while
        record.rec_prefix < record.rec_nframes
        && record.rec_got.(record.rec_prefix)
      do
        record.rec_prefix <- record.rec_prefix + 1
      done;
      if record.rec_prefix > old_prefix then record.rec_nacked <- false;
      Tigon.rx_work ~queue t.nic m.Cost_model.nic_rx_per_frame;
      store_chunk t record d;
      let complete = record.rec_count = record.rec_nframes in
      (* Cumulative acks carry the contiguous prefix — never the raw
         count, which would overstate progress across a loss hole. *)
      if complete || record.rec_prefix mod t.cfg.ack_window = 0 then
        send_protocol_ack t ~queue ~dst:key.Wire.src_node ~key
          ~acked:record.rec_prefix;
      (* Gap detected (a frame beyond the prefix): NACK once so the
         sender rewinds immediately instead of waiting out its RTO. *)
      if
        t.cfg.use_nacks && (not complete)
        && d.frame_idx > record.rec_prefix
        && not record.rec_nacked
      then begin
        record.rec_nacked <- true;
        t.st_nacks <- t.st_nacks + 1;
        Stats.Counter.incr t.mh.h_nacks_sent;
        Trace.instant t.trace ~layer:Trace.Emp ~node:(node_id t) "emp.nack"
          ~args:[ ("missing", string_of_int record.rec_prefix) ];
        Tigon.rx_work ~queue t.nic m.Cost_model.nic_ack_gen;
        Tigon.transmit t.nic
          (Wire.nack_frame ~src:(node_id t) ~dst:key.Wire.src_node ~key
             ~next_expected:record.rec_prefix)
      end;
      if complete then finish_record t key record
    end

let rx_ack t ~queue key acked =
  let m = model t in
  Tigon.rx_work ~queue t.nic m.Cost_model.nic_rx_classify;
  match Hashtbl.find_opt t.active_tx key with
  | None -> ()
  | Some st ->
    if acked > st.s_acked then begin
      st.s_acked <- acked;
      (* An ack may cover frames sent before a go-back-N rewind: skip
         retransmitting what the receiver already holds. *)
      if st.s_next < acked then st.s_next <- acked;
      st.s_rto <- t.cfg.rto;
      st.s_retries <- 0
    end;
    if st.s_acked >= st.s_nframes && not st.s_done then begin
      st.s_done <- true;
      Hashtbl.remove t.active_tx key;
      Trace.span_end t.trace ~layer:Trace.Emp ~node:(node_id t) "emp.send"
        st.s_span;
      (* Completion notification DMA'd to the host. Ring-submitted
         sends post to the CQ instead, whose flush fiber coalesces many
         completion writes into one DMA burst (CQ moderation) — at high
         completion rates the per-message [dma_setup] vanishes. *)
      (match (st.s_ring, t.tx_ring) with
      | true, Some rp -> Uls_rings.Ringpair.complete rp st
      | _ -> Tigon.dma t.nic ~bytes:8)
    end;
    Cond.broadcast st.s_cond

(* A NACK names the first missing frame: rewind the transmit point to it
   at once (selective go-back-N) without waiting for the RTO. *)
let rx_nack t ~queue key next_expected =
  let m = model t in
  Tigon.rx_work ~queue t.nic m.Cost_model.nic_rx_classify;
  match Hashtbl.find_opt t.active_tx key with
  | None -> ()
  | Some st ->
    (* A NACK is also cumulative: everything below the named frame has
       been received. *)
    if next_expected > st.s_acked then st.s_acked <- next_expected;
    if next_expected < st.s_next then begin
      t.st_retrans <- t.st_retrans + (st.s_next - next_expected);
      st.s_next <- next_expected
    end;
    Cond.broadcast st.s_cond

let rx_dispatcher t queue () =
  let rec loop () =
    let frame = Mailbox.recv t.rx_queues.(queue) in
    (match frame.Uls_ether.Frame.payload with
    | Wire.Data d -> rx_data t ~queue d
    | Wire.Ack { key; acked } -> rx_ack t ~queue key acked
    | Wire.Nack { key; next_expected } -> rx_nack t ~queue key next_expected
    | _ -> ());
    loop ()
  in
  loop ()

let reset t =
  (* Descriptors torn down by a reset count as completed for the
     posted/completed conservation invariant: they are gone by design,
     not leaked. *)
  let unposted = Match_list.unpost_all t.posted in
  t.st_desc_completed <- t.st_desc_completed + List.length unposted;
  Hashtbl.reset t.active_rx;
  Hashtbl.reset t.finished_rx;
  Vec.iter
    (fun slot ->
      slot.u_state <- `Free;
      slot.u_len <- 0)
    t.uq

let create ?(config = default_config) node nic =
  let sim = Node.sim node in
  let metrics = Metrics.for_sim sim in
  let node_id = Node.id node in
  let counter name = Metrics.counter metrics ~node:node_id name in
  let t =
    {
      node;
      nic;
      cfg = config;
      metrics;
      mh =
        {
          h_frames_sent = counter "emp.frames_sent";
          h_send_failures = counter "emp.send_failures";
          h_frames_retransmitted = counter "emp.frames_retransmitted";
          h_messages_sent = counter "emp.messages_sent";
          h_uq_hits = counter "emp.uq_hits";
          h_match_walk_descs =
            Metrics.histogram metrics ~node:node_id "emp.match_walk_descs";
          h_messages_received = counter "emp.messages_received";
          h_drops_no_descriptor = counter "emp.drops_no_descriptor";
          h_nacks_sent = counter "emp.nacks_sent";
        };
      trace = Trace.for_sim sim;
      inv = Invariant.for_sim sim;
      next_msg_id = 0;
      posted = Match_list.create ~engine:(Tigon.match_engine nic) ();
      uq = Vec.create ();
      active_rx = Hashtbl.create 64;
      finished_rx = Hashtbl.create 256;
      active_tx = Hashtbl.create 64;
      rx_queues =
        Array.init (Tigon.rx_queues nic) (fun i ->
            let label =
              if i = 0 then "emp:rx-queue"
              else Printf.sprintf "emp:rx-queue%d" i
            in
            Mailbox.create ~label sim);
      uq_arrival = Cond.create ~label:"emp:uq-arrival" sim;
      tx_ring = None;
      on_send_failure = (fun ~dst:_ ~tag:_ ~retries:_ -> ());
      st_msgs_sent = 0;
      st_msgs_recv = 0;
      st_frames_sent = 0;
      st_retrans = 0;
      st_drops = 0;
      st_acks = 0;
      st_uq_hits = 0;
      st_walked = 0;
      st_nacks = 0;
      st_desc_posted = 0;
      st_desc_completed = 0;
    }
  in
  Tigon.set_firmware_rx nic (fun frame ->
      let q = Tigon.steer nic ~flow:frame.Uls_ether.Frame.src in
      Mailbox.send t.rx_queues.(q) frame);
  Array.iteri
    (fun i _ ->
      let name =
        if i = 0 then "emp-rx-dispatch"
        else Printf.sprintf "emp-rx-dispatch%d" i
      in
      Sim.spawn sim ~name ~daemon:true (rx_dispatcher t i))
    t.rx_queues;
  t
