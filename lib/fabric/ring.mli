(** Consistent-hash ring with virtual nodes — the placement function of
    the L4 load-balancer switch.

    Each member cell owns [vnodes] pseudo-random points on a ring of
    hash positions; a flow key maps to the cell owning the first point
    clockwise from the key's own position. Properties the fabric builds
    on, all verified by unit tests:

    - {e Balance}: with the default 128 virtual nodes per cell, every
      cell's share of a large key population stays within roughly
      +/- 30% of 1/K (tightening as [vnodes] grows).
    - {e Minimal disruption}: removing a cell remaps only the keys that
      cell owned (~= 1/K of all keys); adding a (K+1)-th cell moves
      ~= 1/(K+1) of keys, all {e to} the new cell. No key ever moves
      between two surviving cells.
    - {e Determinism}: placement is a pure function of (seed, members,
      key) — a SplitMix64-finalizer hash, independent of insertion
      order and of OCaml's [Hashtbl.hash]. Equal ring positions are
      owned by the lower cell id (ECMP-style tie-break), so every node
      computing the ring agrees without coordination.

    Membership changes rebuild the point array (O(K * vnodes * log) —
    rare); lookups are a binary search (O(log (K * vnodes))). *)

type t

val create : ?vnodes:int -> ?seed:int -> unit -> t
(** Empty ring. [vnodes] defaults to 128 points per cell. *)

val add : t -> int -> unit
(** Add a cell (id) to the ring. Idempotent. *)

val remove : t -> int -> unit
(** Remove a cell from the ring. Idempotent. *)

val lookup : t -> key:int -> int option
(** Owning cell for a flow key, [None] on an empty ring. *)

val members : t -> int list
(** Current cells, ascending. *)

val size : t -> int
val mem : t -> int -> bool
val vnodes : t -> int

val hash2 : seed:int -> int -> int -> int
(** The ring's non-negative 64-bit mixing hash, exposed for callers
    that need a consistent flow-key or steering hash (e.g. packing a
    5-tuple into a key). *)
