(** Sharded serving fabric: K server cells behind an L4 load-balancer
    switch.

    One cell = one {!Uls_server.Server} on its own simulated node,
    internally sharded SO_REUSEPORT-style across [shards] connection
    schedulers. The balancer spreads {e flows} over cells by consistent
    hashing of the flow key on a virtual-node {!Ring} — the Maglev/ECMP
    discipline: flow affinity, near-uniform spread, and minimal
    remapping when membership changes. No cell ever carries more than
    its share of connections, which is what keeps every NIC below the
    EMP linear-match-walk collapse documented in EXPERIMENTS.md.

    Health has two signal paths feeding one per-cell failure counter:

    - {e active}: a prober fiber per cell (from [probe_node]) does a
      full connect+close through the stack under test every
      [probe_period];
    - {e passive}: callers report data-path connect failures via
      {!report_failure} (or implicitly via {!connect}), which is
      usually the earlier signal.

    [fail_threshold] consecutive failures take the cell out of the ring
    (state [Down]) — the "heal": subsequent flows remap to the
    surviving cells, touching only the dead cell's key range. If
    [rejoin_threshold] > 0, that many consecutive probe successes put a
    [Down] cell back.

    {!drain} removes a cell from the ring {e without} killing it: no
    new flows arrive, existing connections run to completion, and the
    cell's server stops once its last connection closes (state
    [Drained], with {!drain_open} recording how many connections were
    drained rather than reset).

    The fabric runs unchanged over the EMP substrate and kernel TCP
    (anything implementing {!Uls_api.Sockets_api.stack}) and is
    deterministic: probers are staggered deterministically, the ring
    hash is seeded, and all state changes happen inside simulator
    fibers. *)

type cell_state =
  | Up  (** in the ring, taking flows *)
  | Draining  (** out of the ring, finishing existing connections *)
  | Drained  (** gracefully emptied and stopped *)
  | Down  (** failed out of the ring by the health checker *)

val state_name : cell_state -> string

type event = {
  at : Uls_engine.Time.ns;
  cell : int;
  to_state : cell_state;
  cause : string;  (** "probe-timeout", "connect-failed", "drain-requested", ... *)
}

type config = {
  port : int;  (** every cell listens on this port on its own node *)
  backlog : int;
  shards : int;  (** SO_REUSEPORT shards (schedulers) per cell *)
  sched : Uls_server.Sched.config option;  (** per-shard scheduler config *)
  workload : Uls_server.Server.workload;
  vnodes : int;  (** ring virtual nodes per cell *)
  ring_seed : int;
  probe_node : int option;  (** health-probe origin; [None] = passive only *)
  probe_period : Uls_engine.Time.ns;
  fail_threshold : int;  (** consecutive failures before [Down] *)
  rejoin_threshold : int;  (** probe successes before a [Down] cell
                               rejoins; 0 = never auto-rejoin *)
}

val default_config : config
(** port 80, backlog 128, 4 shards, echo, 128 vnodes, 5 ms probes,
    2 failures to go down, 2 probe successes to rejoin. Auto-rejoin is
    on by default so a cell marked down by a transient overload burst
    returns once probes succeed again; a dead cell keeps failing
    probes, so it stays out. The backlog is deliberately modest: every
    posted backlog descriptor sits in the cell NIC's linear match
    list, so each RX frame pays O(backlog) walk cost. *)

type t

exception No_live_cells
(** Raised by {!route}/{!connect} when every cell is out of the ring. *)

val create :
  Uls_engine.Sim.t -> Uls_api.Sockets_api.stack -> nodes:int list -> config -> t
(** [create sim api ~nodes config] starts one cell per node id in
    [nodes] (cell ids are positions in the list) and, when
    [config.probe_node] is set, one prober fiber per cell. *)

val flow_key : client_node:int -> flow:int -> port:int -> int
(** Pack a flow's identifying tuple into a ring key (the 5-tuple hash:
    source node, source flow/ephemeral id, destination port). *)

val route : t -> key:int -> int
(** Owning cell id for a flow key. @raise No_live_cells *)

val connect :
  t -> client_node:int -> key:int -> Uls_api.Sockets_api.stream * int
(** Route [key], connect from [client_node] to the owning cell, and
    return the stream with the cell id. A connect failure feeds the
    passive health counter before re-raising.
    @raise No_live_cells when the ring is empty. *)

val report_failure : t -> int -> unit
(** Passive health: tell the fabric a data-path attempt against this
    cell failed. *)

val drain : t -> int -> unit
(** Begin draining a cell (no-op unless it is [Up]). *)

val stop : t -> unit
(** Stop every cell's server. Idempotent. *)

val ring : t -> Ring.t
val cells : t -> int
val live_cells : t -> int
val cell_node : t -> int -> int
val cell_state : t -> int -> cell_state
val server : t -> int -> Uls_server.Server.t
val drain_open : t -> int -> int
(** Connections that were open when {!drain} began on this cell. *)

val events : t -> event list
(** Membership/state transitions, oldest first — the failover audit
    log ("ring healed at t=..."). *)

val config : t -> config
