(** Sharded serving fabric: K server cells behind a consistent-hash L4
    balancer, with health checking, draining, and failover. See the
    .mli for the topology contract. *)

open Uls_engine
module Api = Uls_api.Sockets_api
module Server = Uls_server.Server

type cell_state = Up | Draining | Drained | Down

let state_name = function
  | Up -> "up"
  | Draining -> "draining"
  | Drained -> "drained"
  | Down -> "down"

type event = {
  at : Time.ns;
  cell : int;
  to_state : cell_state;
  cause : string;
}

type config = {
  port : int;
  backlog : int;
  shards : int;
  sched : Uls_server.Sched.config option;
  workload : Server.workload;
  vnodes : int;
  ring_seed : int;
  probe_node : int option;
  probe_period : Time.ns;
  fail_threshold : int;
  rejoin_threshold : int;
}

let default_config =
  {
    port = 80;
    (* Each posted backlog descriptor is an entry in the cell NIC's
       linear match list — every RX frame pays for it. *)
    backlog = 128;
    shards = 4;
    sched = None;
    workload = Server.Echo;
    vnodes = 128;
    ring_seed = 0;
    probe_node = None;
    probe_period = Time.ms 5;
    fail_threshold = 2;
    (* Auto-rejoin matters under overload: a cell that sheds connects
       while saturated is alive, and probes prove it the moment the
       burst passes. A truly dead (paused) cell keeps failing probes,
       so it never accumulates the successes needed to rejoin. *)
    rejoin_threshold = 2;
  }

type cell = {
  id : int;
  node : int;
  server : Server.t;
  mutable state : cell_state;
  mutable fails : int;  (* consecutive probe/data-path failures *)
  mutable oks : int;  (* consecutive probe successes while Down *)
  mutable drain_open : int;  (* connections open when draining began *)
}

type handles = {
  h_cell_up : Stats.Counter.t;
  h_cell_draining : Stats.Counter.t;
  h_cell_drained : Stats.Counter.t;
  h_cell_down : Stats.Counter.t;
  g_ring_cells : float ref;
  h_connects : Stats.Counter.t;
  h_probes_ok : Stats.Counter.t;
  h_probes_failed : Stats.Counter.t;
}

type t = {
  sim : Sim.t;
  api : Api.stack;
  cfg : config;
  ring : Ring.t;
  cells : cell array;
  metrics : Metrics.t;
  mh : handles;
  mutable events : event list;  (* newest first *)
  mutable running : bool;
}

exception No_live_cells

let record t cell to_state cause =
  cell.state <- to_state;
  t.events <- { at = Sim.now t.sim; cell = cell.id; to_state; cause } :: t.events;
  Stats.Counter.incr
    (match to_state with
    | Up -> t.mh.h_cell_up
    | Draining -> t.mh.h_cell_draining
    | Drained -> t.mh.h_cell_drained
    | Down -> t.mh.h_cell_down);
  t.mh.g_ring_cells := float_of_int (Ring.size t.ring)

let mark_down t cell ~cause =
  if cell.state = Up then begin
    Ring.remove t.ring cell.id;
    record t cell Down cause
  end

let rejoin t cell ~cause =
  if cell.state = Down then begin
    cell.fails <- 0;
    cell.oks <- 0;
    Ring.add t.ring cell.id;
    record t cell Up cause
  end

(* Passive + active health share one counter: a data-path connect
   failure is as good a signal as a failed probe (and usually earlier,
   since probes only fire every [probe_period]). *)
let note_failure t cell ~cause =
  cell.oks <- 0;
  if cell.state = Up then begin
    cell.fails <- cell.fails + 1;
    if cell.fails >= t.cfg.fail_threshold then mark_down t cell ~cause
  end

let note_success t cell =
  cell.fails <- 0;
  if cell.state = Down then begin
    cell.oks <- cell.oks + 1;
    if t.cfg.rejoin_threshold > 0 && cell.oks >= t.cfg.rejoin_threshold then
      rejoin t cell ~cause:"probe-recovered"
  end

let report_failure t id = note_failure t t.cells.(id) ~cause:"connect-failed"

let flow_key ~client_node ~flow ~port =
  Ring.hash2 ~seed:port client_node flow

let route t ~key =
  match Ring.lookup t.ring ~key with
  | None -> raise No_live_cells
  | Some id -> id

let connect t ~client_node ~key =
  let id = route t ~key in
  let cell = t.cells.(id) in
  Stats.Counter.incr t.mh.h_connects;
  match
    t.api.Api.connect ~node:client_node { node = cell.node; port = t.cfg.port }
  with
  | stream ->
    note_success t cell;
    (stream, id)
  | exception e ->
    note_failure t cell ~cause:"connect-failed";
    raise e

(* One prober fiber per cell, staggered by cell id so probes never
   synchronise. A probe is a full connect + close through the stack
   under test — the same path real L4 health checks take. *)
let prober t cell () =
  let probe_node = Option.get t.cfg.probe_node in
  Sim.delay t.sim (Time.us (97 * (cell.id + 1)));
  while t.running do
    Sim.delay t.sim t.cfg.probe_period;
    if t.running then begin
      match cell.state with
      | Draining | Drained -> ()
      | Up | Down -> (
        match
          t.api.Api.connect ~node:probe_node
            { node = cell.node; port = t.cfg.port }
        with
        | s ->
          (try s.Api.close () with _ -> ());
          Stats.Counter.incr t.mh.h_probes_ok;
          note_success t cell
        | exception _ ->
          Stats.Counter.incr t.mh.h_probes_failed;
          note_failure t cell ~cause:"probe-timeout")
    end
  done

let drain t id =
  let cell = t.cells.(id) in
  if cell.state = Up then begin
    Ring.remove t.ring cell.id;
    cell.drain_open <- Server.inflight cell.server;
    record t cell Draining "drain-requested";
    (* Watch the cell empty: no new flows arrive (it left the ring), so
       inflight only falls; when it reaches zero the cell stops clean. *)
    Sim.spawn t.sim
      ~name:(Printf.sprintf "fabric-drain-%d" id)
      ~daemon:true
      (fun () ->
        let rec watch () =
          Sim.delay t.sim t.cfg.probe_period;
          if t.running && cell.state = Draining then
            if Server.inflight cell.server = 0 then begin
              Server.stop cell.server;
              record t cell Drained "drain-complete"
            end
            else watch ()
        in
        watch ())
  end

let create sim (api : Api.stack) ~nodes config =
  if nodes = [] then invalid_arg "Fabric.create: no cells";
  let ring = Ring.create ~vnodes:config.vnodes ~seed:config.ring_seed () in
  let cells =
    Array.of_list
      (List.mapi
         (fun id node ->
           let server =
             Server.start sim api ~node ~port:config.port
               ~backlog:config.backlog ?config:config.sched
               ~shards:config.shards config.workload
           in
           { id; node; server; state = Up; fails = 0; oks = 0; drain_open = 0 })
         nodes)
  in
  Array.iter (fun c -> Ring.add ring c.id) cells;
  let metrics = Metrics.for_sim sim in
  let counter name = Metrics.counter metrics name in
  let t =
    {
      sim;
      api;
      cfg = config;
      ring;
      cells;
      metrics;
      mh =
        {
          h_cell_up = counter "fabric.cell.up";
          h_cell_draining = counter "fabric.cell.draining";
          h_cell_drained = counter "fabric.cell.drained";
          h_cell_down = counter "fabric.cell.down";
          g_ring_cells = Metrics.gauge metrics "fabric.ring.cells";
          h_connects = counter "fabric.connects";
          h_probes_ok = counter "fabric.probes.ok";
          h_probes_failed = counter "fabric.probes.failed";
        };
      events = [];
      running = true;
    }
  in
  t.mh.g_ring_cells := float_of_int (Ring.size ring);
  (match config.probe_node with
  | Some _ ->
    Array.iter
      (fun c ->
        Sim.spawn sim
          ~name:(Printf.sprintf "fabric-prober-%d" c.id)
          ~daemon:true (prober t c))
      cells
  | None -> ());
  t

let stop t =
  if t.running then begin
    t.running <- false;
    Array.iter
      (fun c -> if c.state <> Drained then Server.stop c.server)
      t.cells
  end

let ring t = t.ring
let cells t = Array.length t.cells
let cell_node t id = t.cells.(id).node
let cell_state t id = t.cells.(id).state
let server t id = t.cells.(id).server
let drain_open t id = t.cells.(id).drain_open
let events t = List.rev t.events
let config t = t.cfg

let live_cells t =
  Array.fold_left (fun acc c -> if c.state = Up then acc + 1 else acc) 0 t.cells
