(** Consistent-hash ring with virtual nodes. See the .mli for the
    placement contract. *)

(* SplitMix64 finalizer — every bit of the key reaches every bit of the
   point, deterministically across runs and processes. *)
let mix64 (z : int64) =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xbf58476d1ce4e5b9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94d049bb133111ebL in
  logxor z (shift_right_logical z 31)

let hash2 ~seed a b =
  let h = mix64 (Int64.of_int seed) in
  let h = mix64 (Int64.logxor h (Int64.of_int a)) in
  let h = mix64 (Int64.logxor h (Int64.of_int b)) in
  Int64.to_int h land max_int

type t = {
  vnodes : int;
  seed : int;
  mutable members : int list;  (* sorted ascending *)
  mutable points : (int * int) array;  (* (position, cell), sorted *)
}

let create ?(vnodes = 128) ?(seed = 0) () =
  if vnodes < 1 then invalid_arg "Ring.create: vnodes < 1";
  { vnodes; seed; members = []; points = [||] }

let members t = t.members
let size t = List.length t.members
let mem t cell = List.mem cell t.members
let vnodes t = t.vnodes

let rebuild t =
  let pts =
    List.concat_map
      (fun cell ->
        List.init t.vnodes (fun r -> (hash2 ~seed:t.seed cell r, cell)))
      t.members
  in
  let arr = Array.of_list pts in
  (* ECMP-style tie-break: equal positions are owned by the lower cell
     id, on every node that computes the ring — no coordination needed. *)
  Array.sort compare arr;
  t.points <- arr

let add t cell =
  if not (mem t cell) then begin
    t.members <- List.sort compare (cell :: t.members);
    rebuild t
  end

let remove t cell =
  if mem t cell then begin
    t.members <- List.filter (fun c -> c <> cell) t.members;
    rebuild t
  end

(* First point clockwise from the key's position (wrapping), by binary
   search: O(log (cells * vnodes)) per flow. *)
let lookup t ~key =
  let n = Array.length t.points in
  if n = 0 then None
  else begin
    let pos = hash2 ~seed:(t.seed lxor 0x5bd1e995) key 0 in
    let lo = ref 0 and hi = ref n in
    (* smallest index with position >= pos *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if fst t.points.(mid) >= pos then hi := mid else lo := mid + 1
    done;
    let i = if !lo = n then 0 else !lo in
    Some (snd t.points.(i))
  end
