(* Source lint for the repository's own invariants. Stdlib-only text
   pass over lib/ — deliberately not a typed AST tool, so it runs
   before anything builds and stays dependency-free. Three rules:

   no-assert-false   [assert false] is banned in lib/: protocol and
                     decode paths must fail with a named, typed error
                     (Codec.protocol_error, failwith with context), not
                     a bare assertion that loses the state it died on.

   missing-mli       every lib module exposes an interface; the .mli is
                     where the layer's contract (and its docs) live.

   blocking-watcher  readiness watcher callbacks (Evq.register ~watch,
                     Conn.add_watcher, add_accept_watcher) run inside
                     whatever fiber made the socket ready; a blocking
                     call there (read/write/accept/Cond.wait/...)
                     wedges that fiber, not the watcher's owner. Inline
                     callbacks must only flag-and-signal.

   metrics-name-lookup
                     the by-name Metrics forms (incr/add/observe/
                     set_gauge/counter_value/gauge_value) hash the
                     metric name on every call; hot-path modules must
                     resolve handles once at construction
                     (Metrics.counter/gauge/histogram) and use the
                     Stats handle per event. Cold end-of-run report
                     assembly is allowlisted per file.

   unlabeled-sync    Cond.create / Mailbox.create without ~label: the
                     deadlock diagnoser's wait-for edges and the
                     happens-before tracker's racing-pair reports name
                     sync objects by label, so an unlabeled object
                     turns "fiber X waiting on conn:3 credits" into
                     "waiting on cond#17".

   Findings can be suppressed by .ulslint-allow at the repo root
   ("rule path[:line]" per line, '#' comments); stale allowlist entries
   are themselves errors, so the file can only shrink. *)

let root = ref "."

let rules =
  [
    "no-assert-false"; "missing-mli"; "blocking-watcher";
    "metrics-name-lookup"; "unlabeled-sync";
  ]

type finding = { rule : string; path : string; line : int; msg : string }

let findings : finding list ref = ref []
let report rule path line msg = findings := { rule; path; line; msg } :: !findings

(* --- file walking ------------------------------------------------------ *)

let read_lines path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  String.split_on_char '\n' s

let rec walk dir acc =
  Array.fold_left
    (fun acc entry ->
      let path = Filename.concat dir entry in
      if Sys.is_directory path then walk path acc
      else if Filename.check_suffix entry ".ml" then path :: acc
      else acc)
    acc (Sys.readdir dir)

(* --- rule: no-assert-false -------------------------------------------- *)

let check_assert_false path lines =
  List.iteri
    (fun i line ->
      (* Cheap token scan: "assert" followed by "false" on one line.
         Comments mentioning the phrase trip it too — that is fine, the
         phrase should not appear at all. *)
      let rec scan from =
        match String.index_from_opt line from 'a' with
        | None -> ()
        | Some j ->
          if
            j + 6 <= String.length line
            && String.sub line j 6 = "assert"
            && (let rest = String.sub line (j + 6) (String.length line - j - 6) in
                let rest = String.trim rest in
                String.length rest >= 5 && String.sub rest 0 5 = "false")
          then report "no-assert-false" path (i + 1)
            "assert false loses the state it died on; raise a named error"
          else scan (j + 1)
      in
      scan 0)
    lines

(* --- rule: missing-mli ------------------------------------------------- *)

let check_mli path =
  if not (Sys.file_exists (path ^ "i")) then
    report "missing-mli" path 1 "library module has no interface file"

(* --- rule: blocking-watcher -------------------------------------------- *)

(* Watcher registration points whose callback runs in the event
   producer's fiber. *)
let watcher_markers = [ "add_watcher"; "add_accept_watcher"; "~watch:" ]

(* Calls that suspend the running fiber. *)
let blocking_calls =
  [
    ".read "; ".write "; ".accept "; ".recv "; ".send ";
    "Cond.wait"; "Mailbox.recv"; "Resource.use"; "Sim.delay";
    "wait_recv"; "wait_send"; "wait_established";
  ]

let contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

(* Extract the inline [(fun ... -> ...)] starting at or after [start] in
   the flattened source, by balanced-parenthesis matching. *)
let extract_lambda src start =
  match String.index_from_opt src start '(' with
  | None -> None
  | Some lp ->
    let after = String.sub src (lp + 1) (min 8 (String.length src - lp - 1)) in
    if not (String.length (String.trim after) >= 3
            && String.sub (String.trim after) 0 3 = "fun")
    then None
    else begin
      let depth = ref 0 and close = ref (-1) and i = ref lp in
      let n = String.length src in
      while !close < 0 && !i < n do
        (match src.[!i] with
        | '(' -> incr depth
        | ')' ->
          decr depth;
          if !depth = 0 then close := !i
        | _ -> ());
        incr i
      done;
      if !close < 0 then None else Some (String.sub src lp (!close - lp + 1))
    end

let check_blocking_watcher path lines =
  let src = String.concat "\n" lines in
  let line_of off =
    let count = ref 1 in
    String.iteri (fun i c -> if i < off && c = '\n' then incr count) src;
    !count
  in
  List.iter
    (fun marker ->
      let ml = String.length marker in
      let rec scan from =
        if from + ml <= String.length src then
          if String.sub src from ml = marker then begin
            (match extract_lambda src (from + ml) with
            | None -> () (* named callback: assumed audited at definition *)
            | Some body ->
              List.iter
                (fun call ->
                  if contains ~needle:call body then
                    report "blocking-watcher" path (line_of from)
                      (Printf.sprintf
                         "watcher callback registered via %s calls blocking %s"
                         (if marker = "~watch:" then "Evq.register ~watch"
                          else marker)
                         (String.trim call)))
                blocking_calls);
            scan (from + ml)
          end
          else scan (from + 1)
      in
      scan 0)
    watcher_markers

(* --- rule: metrics-name-lookup ----------------------------------------- *)

(* The Metrics entry points that do a name lookup per call. Handle
   constructors (Metrics.counter/gauge/histogram) are the fix, not a
   violation — they are expected at module construction time. *)
let by_name_metrics =
  [
    "Metrics.incr"; "Metrics.add"; "Metrics.observe"; "Metrics.set_gauge";
    "Metrics.counter_value"; "Metrics.gauge_value";
  ]

let check_metrics_lookup path lines =
  List.iteri
    (fun i line ->
      List.iter
        (fun form ->
          if contains ~needle:form line then
            report "metrics-name-lookup" path (i + 1)
              (Printf.sprintf
                 "%s hashes the metric name per call; cache a handle \
                  (Metrics.counter/gauge/histogram) at construction"
                 form))
        by_name_metrics)
    lines

(* --- rule: unlabeled-sync ---------------------------------------------- *)

(* [~label] may sit on the line after the constructor (ocamlformat
   splits long calls), so the check joins a short lookahead window
   before deciding the call is unlabeled. *)
let sync_constructors = [ "Cond.create"; "Mailbox.create" ]

let check_unlabeled_sync path lines =
  let arr = Array.of_list lines in
  Array.iteri
    (fun i line ->
      List.iter
        (fun ctor ->
          if contains ~needle:ctor line then begin
            let window = Buffer.create 256 in
            Buffer.add_string window line;
            for j = i + 1 to min (i + 2) (Array.length arr - 1) do
              Buffer.add_char window '\n';
              Buffer.add_string window arr.(j)
            done;
            if not (contains ~needle:"~label" (Buffer.contents window)) then
              report "unlabeled-sync" path (i + 1)
                (Printf.sprintf
                   "%s without ~label: deadlock wait-for edges and \
                    racing-pair reports need a name for this object"
                   ctor)
          end)
        sync_constructors)
    arr

(* --- allowlist --------------------------------------------------------- *)

type allow = { a_rule : string; a_path : string; a_line : int option }

let load_allowlist path =
  if not (Sys.file_exists path) then []
  else
    read_lines path
    |> List.filter_map (fun line ->
           let line =
             match String.index_opt line '#' with
             | Some i -> String.sub line 0 i
             | None -> line
           in
           match
             String.split_on_char ' ' (String.trim line)
             |> List.filter (fun s -> s <> "")
           with
           | [] -> None
           | [ rule; target ] ->
             if not (List.mem rule rules) then begin
               Printf.eprintf "ulslint: unknown rule %S in allowlist\n" rule;
               exit 2
             end;
             (match String.rindex_opt target ':' with
             | Some i when i < String.length target - 1
                        && String.for_all
                             (fun c -> c >= '0' && c <= '9')
                             (String.sub target (i + 1)
                                (String.length target - i - 1)) ->
               Some
                 {
                   a_rule = rule;
                   a_path = String.sub target 0 i;
                   a_line =
                     Some
                       (int_of_string
                          (String.sub target (i + 1)
                             (String.length target - i - 1)));
                 }
             | _ -> Some { a_rule = rule; a_path = target; a_line = None })
           | _ ->
             Printf.eprintf "ulslint: malformed allowlist line %S\n" line;
             exit 2)

let matches a f =
  a.a_rule = f.rule && a.a_path = f.path
  && match a.a_line with None -> true | Some l -> l = f.line

(* --- driver ------------------------------------------------------------ *)

let () =
  (match Sys.argv with
  | [| _ |] -> ()
  | [| _; dir |] -> root := dir
  | _ ->
    prerr_endline "usage: ulslint [REPO_ROOT]";
    exit 2);
  let lib = Filename.concat !root "lib" in
  if not (Sys.file_exists lib) then begin
    Printf.eprintf "ulslint: no lib/ under %s\n" !root;
    exit 2
  end;
  let files = List.sort compare (walk lib []) in
  List.iter
    (fun path ->
      let lines = read_lines path in
      check_assert_false path lines;
      check_mli path;
      check_blocking_watcher path lines;
      check_metrics_lookup path lines;
      check_unlabeled_sync path lines)
    files;
  let allows = load_allowlist (Filename.concat !root ".ulslint-allow") in
  let relativize f =
    (* Report paths relative to the repo root so allowlist entries are
       machine-independent. *)
    let prefix = !root ^ "/" in
    let pl = String.length prefix in
    if String.length f.path > pl && String.sub f.path 0 pl = prefix then
      { f with path = String.sub f.path pl (String.length f.path - pl) }
    else f
  in
  let all = List.rev_map relativize !findings in
  let stale =
    List.filter (fun a -> not (List.exists (fun f -> matches a f) all)) allows
  in
  let live =
    List.filter (fun f -> not (List.exists (fun a -> matches a f) allows)) all
  in
  List.iter
    (fun f ->
      Printf.printf "%s:%d: [%s] %s\n" f.path f.line f.rule f.msg)
    live;
  List.iter
    (fun a ->
      Printf.printf
        ".ulslint-allow: stale entry \"%s %s%s\" (no such finding — remove it)\n"
        a.a_rule a.a_path
        (match a.a_line with None -> "" | Some l -> ":" ^ string_of_int l))
    stale;
  if live <> [] || stale <> [] then begin
    Printf.printf "ulslint: %d finding(s), %d stale allowlist entr(ies)\n"
      (List.length live) (List.length stale);
    exit 1
  end;
  Printf.printf "ulslint: %d files clean (allowlist: %d entries)\n"
    (List.length files) (List.length allows)
