(* Command-line driver for the reproduction: run paper experiments or
   one-off micro-benchmarks on the simulated testbed. *)

open Cmdliner

let stack_conv =
  let parse = function
    | "emp" -> Ok `Emp
    | "tcp" -> Ok `Tcp
    | "tcp-tuned" -> Ok `Tcp_tuned
    | "ds" -> Ok `Ds
    | "ds-base" -> Ok `Ds_base
    | "dg" -> Ok `Dg
    | s -> Error (`Msg (Printf.sprintf "unknown stack %S" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
      | `Emp -> "emp"
      | `Tcp -> "tcp"
      | `Tcp_tuned -> "tcp-tuned"
      | `Ds -> "ds"
      | `Ds_base -> "ds-base"
      | `Dg -> "dg")
  in
  Arg.conv (parse, print)

let kind_of_stack = function
  | `Emp -> Uls_bench.Microbench.Emp_raw
  | `Tcp -> Uls_bench.Microbench.Tcp Uls_tcp.Config.default
  | `Tcp_tuned ->
    Uls_bench.Microbench.Tcp Uls_tcp.Config.(with_buffers default 262_144)
  | `Ds -> Uls_bench.Microbench.Sub Uls_substrate.Options.data_streaming_enhanced
  | `Ds_base -> Uls_bench.Microbench.Sub Uls_substrate.Options.data_streaming
  | `Dg -> Uls_bench.Microbench.Sub Uls_substrate.Options.datagram

(* --- figures ----------------------------------------------------------- *)

let figures_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment ids (fig11..fig17, connect, abl-*). Default: all.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")
  in
  let run ids quick =
    let tables =
      match ids with
      | [] -> Uls_bench.Experiments.all ~quick ()
      | ids ->
        List.map
          (fun id ->
            match List.assoc_opt id Uls_bench.Experiments.by_id with
            | Some f -> f ~quick ()
            | None -> failwith (Printf.sprintf "unknown experiment %S" id))
          ids
    in
    List.iter (Uls_bench.Table.print Format.std_formatter) tables
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ ids $ quick)

(* --- one-off latency/bandwidth ----------------------------------------- *)

let metrics_flag =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Dump the per-node metrics registry after the run.")

let dump_metrics m = Uls_engine.Metrics.dump m Format.std_formatter

let latency_cmd =
  let stack =
    Arg.(value & opt stack_conv `Ds & info [ "stack" ] ~docv:"STACK"
           ~doc:"emp | tcp | tcp-tuned | ds | ds-base | dg")
  in
  let size =
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"BYTES" ~doc:"Message size.")
  in
  let iters = Arg.(value & opt int 30 & info [ "iters" ] ~doc:"Iterations.") in
  let run stack size iters metrics =
    if metrics then begin
      let us, _, m =
        Uls_bench.Microbench.ping_pong_observed ~iters
          ~kind:(kind_of_stack stack) ~size ()
      in
      Printf.printf "%d-byte one-way latency: %.2f us\n" size us;
      dump_metrics m
    end
    else
      let us =
        Uls_bench.Microbench.ping_pong ~iters ~kind:(kind_of_stack stack) ~size ()
      in
      Printf.printf "%d-byte one-way latency: %.2f us\n" size us
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Ping-pong one-way latency on a 2-node cluster")
    Term.(const run $ stack $ size $ iters $ metrics_flag)

let bandwidth_cmd =
  let stack =
    Arg.(value & opt stack_conv `Ds & info [ "stack" ] ~docv:"STACK"
           ~doc:"emp | tcp | tcp-tuned | ds | ds-base | dg")
  in
  let msg =
    Arg.(value & opt int 65_536 & info [ "msg" ] ~docv:"BYTES" ~doc:"Message size.")
  in
  let total =
    Arg.(value & opt int (16 * 1024 * 1024) & info [ "total" ] ~docv:"BYTES"
           ~doc:"Total bytes to stream.")
  in
  let run stack msg total metrics =
    if metrics then begin
      let mbps, _, m =
        Uls_bench.Microbench.bandwidth_observed ~total
          ~kind:(kind_of_stack stack) ~msg ()
      in
      Printf.printf "stream bandwidth (%d-byte messages): %.1f Mb/s\n" msg mbps;
      dump_metrics m
    end
    else
      let mbps =
        Uls_bench.Microbench.bandwidth ~total ~kind:(kind_of_stack stack) ~msg ()
      in
      Printf.printf "stream bandwidth (%d-byte messages): %.1f Mb/s\n" msg mbps
  in
  Cmd.v
    (Cmd.info "bandwidth" ~doc:"Unidirectional stream bandwidth")
    Term.(const run $ stack $ msg $ total $ metrics_flag)

(* --- chaos -------------------------------------------------------------- *)

let chaos_cmd =
  let stacks =
    Arg.(value & opt_all stack_conv [ `Ds; `Tcp ] & info [ "stack" ]
           ~docv:"STACK"
           ~doc:"Stack(s) to sweep (repeatable): tcp | tcp-tuned | ds | \
                 ds-base | dg. Default: ds and tcp.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Fault-engine seed; same seed, same fault sequence.")
  in
  let total =
    Arg.(value & opt int (4 * 1024 * 1024) & info [ "total" ] ~docv:"BYTES"
           ~doc:"Bytes streamed per run.")
  in
  let msg =
    Arg.(value & opt int 16_384 & info [ "msg" ] ~docv:"BYTES"
           ~doc:"Bytes per write.")
  in
  let rates =
    Arg.(value & opt (list float) Uls_bench.Chaos.default_rates
         & info [ "loss" ] ~docv:"P,P,..."
             ~doc:"Frame-loss probabilities to sweep (fractions, not %).")
  in
  let chaos_kind = function
    | `Emp ->
      prerr_endline "ulsbench chaos: raw EMP has no sockets stream; use ds/dg";
      exit 124
    | `Tcp -> Uls_bench.Chaos.Tcp Uls_tcp.Config.default
    | `Tcp_tuned ->
      Uls_bench.Chaos.Tcp Uls_tcp.Config.(with_buffers default 262_144)
    | `Ds -> Uls_bench.Chaos.Sub Uls_substrate.Options.data_streaming_enhanced
    | `Ds_base -> Uls_bench.Chaos.Sub Uls_substrate.Options.data_streaming
    | `Dg -> Uls_bench.Chaos.Sub Uls_substrate.Options.datagram
  in
  let run stacks seed total msg rates =
    let failures = ref 0 in
    List.iter
      (fun stack ->
        let kind = chaos_kind stack in
        let rows = Uls_bench.Chaos.sweep ~seed ~rates ~total ~msg ~kind () in
        Uls_bench.Chaos.print_table Format.std_formatter ~kind rows;
        List.iter
          (fun r ->
            if not (r.Uls_bench.Chaos.completed && r.Uls_bench.Chaos.intact)
            then incr failures)
          rows)
      stacks;
    if !failures > 0 then begin
      Printf.eprintf "ulsbench chaos: %d run(s) hung or corrupted data\n"
        !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Stream a checksummed payload under seeded frame loss and print \
          goodput/retransmission tables per loss rate; exits non-zero if \
          any run hangs or delivers corrupt bytes")
    Term.(const run $ stacks $ seed $ total $ msg $ rates)

(* --- trace -------------------------------------------------------------- *)

let trace_cmd =
  let experiment =
    Arg.(value & pos 0 string "pingpong" & info [] ~docv:"EXPERIMENT"
           ~doc:"pingpong | bandwidth | barrier")
  in
  let stack =
    Arg.(value & opt stack_conv `Ds & info [ "stack" ] ~docv:"STACK"
           ~doc:"emp | tcp | tcp-tuned | ds | ds-base | dg")
  in
  let size =
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"BYTES"
           ~doc:"Message size (pingpong).")
  in
  let msg =
    Arg.(value & opt int 65_536 & info [ "msg" ] ~docv:"BYTES"
           ~doc:"Message size (bandwidth).")
  in
  let nodes =
    Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"N"
           ~doc:"Group size (barrier).")
  in
  let iters = Arg.(value & opt int 10 & info [ "iters" ] ~doc:"Iterations.") in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the Chrome-trace JSON here instead of stdout.")
  in
  let run experiment stack size msg nodes iters out metrics =
    let kind = kind_of_stack stack in
    let summary, tr, m =
      match experiment with
      | "pingpong" ->
        let us, tr, m =
          Uls_bench.Microbench.ping_pong_observed ~iters ~kind ~size ()
        in
        (Printf.sprintf "%d-byte one-way latency: %.2f us" size us, tr, m)
      | "bandwidth" ->
        let mbps, tr, m =
          Uls_bench.Microbench.bandwidth_observed ~total:(4 * 1024 * 1024)
            ~kind ~msg ()
        in
        (Printf.sprintf "stream bandwidth: %.1f Mb/s" mbps, tr, m)
      | "barrier" ->
        let us, tr, m =
          Uls_bench.Microbench.barrier_latency_observed ~iters
            ~alg:Uls_collective.Group.Binomial_tree ~nodes ()
        in
        (Printf.sprintf "%d-node barrier: %.2f us" nodes us, tr, m)
      | other ->
        Printf.eprintf "ulsbench trace: unknown experiment %S\n" other;
        exit 124
    in
    let json = Uls_engine.Trace.to_chrome_json tr in
    (* Keep stdout pure JSON when no --out was given, so the output can
       be piped straight into a validator or chrome://tracing. *)
    (match out with
    | None ->
      print_string json;
      Printf.eprintf "%s (%d trace events)\n" summary
        (List.length (Uls_engine.Trace.events tr))
    | Some file ->
      let oc = open_out file in
      output_string oc json;
      close_out oc;
      Printf.printf "%s (%d trace events -> %s)\n" summary
        (List.length (Uls_engine.Trace.events tr))
        file);
    if metrics then dump_metrics m
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a benchmark with structured tracing enabled and emit \
          Chrome-trace JSON (load in chrome://tracing or Perfetto)")
    Term.(const run $ experiment $ stack $ size $ msg $ nodes $ iters $ out
          $ metrics_flag)

(* --- collectives -------------------------------------------------------- *)

let alg_conv =
  let parse = function
    | "linear" -> Ok Uls_collective.Group.Linear
    | "binomial" -> Ok Uls_collective.Group.Binomial_tree
    | "recdbl" -> Ok Uls_collective.Group.Recursive_doubling
    | "nic" -> Ok Uls_collective.Group.Nic_forward
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print fmt a =
    Format.pp_print_string fmt (Uls_collective.Group.algorithm_name a)
  in
  Arg.conv (parse, print)

let coll_op_conv =
  let parse = function
    | "barrier" -> Ok `Barrier
    | "bcast" -> Ok `Bcast
    | "allreduce" -> Ok `Allreduce
    | s -> Error (`Msg (Printf.sprintf "unknown collective op %S" s))
  in
  let print fmt o =
    Format.pp_print_string fmt
      (match o with
      | `Barrier -> "barrier"
      | `Bcast -> "bcast"
      | `Allreduce -> "allreduce")
  in
  Arg.conv (parse, print)

let collective_cmd =
  let op =
    Arg.(value & opt coll_op_conv `Barrier & info [ "op" ] ~docv:"OP"
           ~doc:"barrier | bcast | allreduce")
  in
  let alg =
    Arg.(value & opt alg_conv Uls_collective.Group.Binomial_tree
         & info [ "alg" ] ~docv:"ALG" ~doc:"linear | binomial | recdbl | nic")
  in
  let nodes =
    Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"N" ~doc:"Group size.")
  in
  let size =
    Arg.(value & opt int 65_536 & info [ "size" ] ~docv:"BYTES"
           ~doc:"Payload size (bcast/allreduce only).")
  in
  let iters = Arg.(value & opt int 10 & info [ "iters" ] ~doc:"Iterations.") in
  let run op alg nodes size iters metrics =
    if nodes < 1 then begin
      prerr_endline "ulsbench: --nodes must be at least 1";
      exit 124
    end;
    let alg_name = Uls_collective.Group.algorithm_name alg in
    match op with
    | `Barrier ->
      if metrics then begin
        let us, _, m =
          Uls_bench.Microbench.barrier_latency_observed ~iters ~alg ~nodes ()
        in
        Printf.printf "%d-node %s barrier: %.2f us\n" nodes alg_name us;
        dump_metrics m
      end
      else
        let us = Uls_bench.Microbench.barrier_latency ~iters ~alg ~nodes () in
        Printf.printf "%d-node %s barrier: %.2f us\n" nodes alg_name us
    | (`Bcast | `Allreduce) as op ->
      let op_name =
        match op with `Bcast -> "bcast" | `Allreduce -> "allreduce"
      in
      if metrics then begin
        let mbps, _, m =
          Uls_bench.Microbench.coll_bandwidth_observed ~iters ~op ~alg ~nodes
            ~size ()
        in
        Printf.printf "%d-node %s %s (%d B): %.1f Mb/s\n" nodes alg_name
          op_name size mbps;
        dump_metrics m
      end
      else
        let mbps =
          Uls_bench.Microbench.coll_bandwidth ~iters ~op ~alg ~nodes ~size ()
        in
        Printf.printf "%d-node %s %s (%d B): %.1f Mb/s\n" nodes alg_name
          op_name size mbps
  in
  Cmd.v
    (Cmd.info "collective"
       ~doc:"Collective latency/bandwidth over an EMP group")
    Term.(const run $ op $ alg $ nodes $ size $ iters $ metrics_flag)

let () =
  let doc = "Sockets-over-EMP reproduction benchmarks (simulated testbed)" in
  let info = Cmd.info "ulsbench" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figures_cmd;
            latency_cmd;
            bandwidth_cmd;
            collective_cmd;
            chaos_cmd;
            trace_cmd;
          ]))
