(* Command-line driver for the reproduction: run paper experiments or
   one-off micro-benchmarks on the simulated testbed. *)

open Cmdliner

let stack_conv =
  let parse = function
    | "emp" -> Ok `Emp
    | "tcp" -> Ok `Tcp
    | "tcp-tuned" -> Ok `Tcp_tuned
    | "ds" -> Ok `Ds
    | "ds-base" -> Ok `Ds_base
    | "dg" -> Ok `Dg
    | s -> Error (`Msg (Printf.sprintf "unknown stack %S" s))
  in
  let print fmt s =
    Format.pp_print_string fmt
      (match s with
      | `Emp -> "emp"
      | `Tcp -> "tcp"
      | `Tcp_tuned -> "tcp-tuned"
      | `Ds -> "ds"
      | `Ds_base -> "ds-base"
      | `Dg -> "dg")
  in
  Arg.conv (parse, print)

let kind_of_stack = function
  | `Emp -> Uls_bench.Microbench.Emp_raw
  | `Tcp -> Uls_bench.Microbench.Tcp Uls_tcp.Config.default
  | `Tcp_tuned ->
    Uls_bench.Microbench.Tcp Uls_tcp.Config.(with_buffers default 262_144)
  | `Ds -> Uls_bench.Microbench.Sub Uls_substrate.Options.data_streaming_enhanced
  | `Ds_base -> Uls_bench.Microbench.Sub Uls_substrate.Options.data_streaming
  | `Dg -> Uls_bench.Microbench.Sub Uls_substrate.Options.datagram

(* --- figures ----------------------------------------------------------- *)

let figures_cmd =
  let ids =
    Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
           ~doc:"Experiment ids (fig11..fig17, connect, abl-*). Default: all.")
  in
  let quick =
    Arg.(value & flag & info [ "quick" ] ~doc:"Smaller sweeps, faster run.")
  in
  let run ids quick =
    let tables =
      match ids with
      | [] -> Uls_bench.Experiments.all ~quick ()
      | ids ->
        List.map
          (fun id ->
            match List.assoc_opt id Uls_bench.Experiments.by_id with
            | Some f -> f ~quick ()
            | None -> failwith (Printf.sprintf "unknown experiment %S" id))
          ids
    in
    List.iter (Uls_bench.Table.print Format.std_formatter) tables
  in
  Cmd.v
    (Cmd.info "figures" ~doc:"Regenerate the paper's tables and figures")
    Term.(const run $ ids $ quick)

(* --- one-off latency/bandwidth ----------------------------------------- *)

let metrics_flag =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Dump the per-node metrics registry after the run.")

let dump_metrics m = Uls_engine.Metrics.dump m Format.std_formatter

(* Machine-tracked perf records: one JSON object per run, appended to a
   BENCH_*.json file (created on first use) so the trajectory
   accumulates across commits. Every record carries a schema version so
   downstream tooling can tell record generations apart. Values arrive
   pre-rendered (ints, %.3f floats, quoted strings). *)
let bench_schema_version = 3

let emit_json ~file fields =
  let fields = ("schema", string_of_int bench_schema_version) :: fields in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 file in
  let buf = Buffer.create 512 in
  Buffer.add_char buf '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "%S:%s" k v))
    fields;
  Buffer.add_string buf "}\n";
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "record appended -> %s\n" file

let sched_conv =
  let parse = function
    | "heap" -> Ok `Heap
    | "wheel" -> Ok `Wheel
    | s -> Error (`Msg (Printf.sprintf "unknown scheduler %S" s))
  in
  let print fmt s =
    Format.pp_print_string fmt (match s with `Heap -> "heap" | `Wheel -> "wheel")
  in
  Arg.conv (parse, print)

let sched_flag default =
  Arg.(value & opt sched_conv default
       & info [ "sched" ] ~docv:"SCHED"
           ~doc:"Simulator event queue: $(b,wheel) (hierarchical timing \
                 wheel, O(1) amortized) or $(b,heap) (binary heap \
                 baseline). Dispatch order is byte-identical either way.")

let sched_name = function `Heap -> "heap" | `Wheel -> "wheel"

(* Parse one flat record emitted by [emit_json] back into fields — the
   --check gates read committed BENCH_*.json baselines with this. Only
   handles the shape we emit: one {"k":v,...} object per line, values
   ints / %.3f floats / bools / %S strings. *)
let parse_record line =
  let n = String.length line in
  let i = ref 0 in
  let expect c = if !i < n && line.[!i] = c then incr i else raise Exit in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      if !i >= n then raise Exit
      else
        match line.[!i] with
        | '"' -> incr i
        | '\\' ->
          incr i;
          if !i < n then begin
            Buffer.add_char b line.[!i];
            incr i
          end;
          go ()
        | c ->
          Buffer.add_char b c;
          incr i;
          go ()
    in
    go ();
    Buffer.contents b
  in
  let fields = ref [] in
  try
    expect '{';
    let rec loop () =
      if !i < n && line.[!i] = '}' then ()
      else begin
        let k = parse_string () in
        expect ':';
        let v =
          if !i < n && line.[!i] = '"' then parse_string ()
          else begin
            let j = !i in
            while !i < n && line.[!i] <> ',' && line.[!i] <> '}' do
              incr i
            done;
            String.sub line j (!i - j)
          end
        in
        fields := (k, v) :: !fields;
        if !i < n && line.[!i] = ',' then begin
          incr i;
          loop ()
        end
      end
    in
    loop ();
    Some (List.rev !fields)
  with Exit -> None

let read_records file =
  if not (Sys.file_exists file) then []
  else begin
    let ic = open_in file in
    let recs = ref [] in
    (try
       while true do
         match parse_record (input_line ic) with
         | Some r -> recs := r :: !recs
         | None -> ()
       done
     with End_of_file -> ());
    close_in ic;
    List.rev !recs
  end

let match_conv =
  let parse s =
    match Uls_nic.Match_list.engine_of_string s with
    | Some e -> Ok e
    | None -> Error (`Msg (Printf.sprintf "unknown match engine %S" s))
  in
  let print fmt e =
    Format.pp_print_string fmt (Uls_nic.Match_list.engine_name e)
  in
  Arg.conv (parse, print)

let match_engine_flag =
  Arg.(value & opt match_conv Uls_nic.Match_list.Hashed
       & info [ "match" ] ~docv:"ENGINE"
           ~doc:"NIC tag-match engine: $(b,hashed) (per-key descriptor \
                 rings + RSS across both receive cores) or $(b,linear) \
                 (the paper's measured O(descriptors) walk, kept as the \
                 ablation baseline).")

let json_int i = string_of_int i
let json_float f = Printf.sprintf "%.3f" f
let json_str s = Printf.sprintf "%S" s
let json_bool b = if b then "true" else "false"

let latency_cmd =
  let stack =
    Arg.(value & opt stack_conv `Ds & info [ "stack" ] ~docv:"STACK"
           ~doc:"emp | tcp | tcp-tuned | ds | ds-base | dg")
  in
  let size =
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"BYTES" ~doc:"Message size.")
  in
  let iters = Arg.(value & opt int 30 & info [ "iters" ] ~doc:"Iterations.") in
  let run stack size iters metrics =
    if metrics then begin
      let us, _, m =
        Uls_bench.Microbench.ping_pong_observed ~iters
          ~kind:(kind_of_stack stack) ~size ()
      in
      Printf.printf "%d-byte one-way latency: %.2f us\n" size us;
      dump_metrics m
    end
    else
      let us =
        Uls_bench.Microbench.ping_pong ~iters ~kind:(kind_of_stack stack) ~size ()
      in
      Printf.printf "%d-byte one-way latency: %.2f us\n" size us
  in
  Cmd.v
    (Cmd.info "latency" ~doc:"Ping-pong one-way latency on a 2-node cluster")
    Term.(const run $ stack $ size $ iters $ metrics_flag)

let bandwidth_cmd =
  let stack =
    Arg.(value & opt stack_conv `Ds & info [ "stack" ] ~docv:"STACK"
           ~doc:"emp | tcp | tcp-tuned | ds | ds-base | dg")
  in
  let msg =
    Arg.(value & opt int 65_536 & info [ "msg" ] ~docv:"BYTES" ~doc:"Message size.")
  in
  let total =
    Arg.(value & opt int (16 * 1024 * 1024) & info [ "total" ] ~docv:"BYTES"
           ~doc:"Total bytes to stream.")
  in
  let run stack msg total metrics =
    if metrics then begin
      let mbps, _, m =
        Uls_bench.Microbench.bandwidth_observed ~total
          ~kind:(kind_of_stack stack) ~msg ()
      in
      Printf.printf "stream bandwidth (%d-byte messages): %.1f Mb/s\n" msg mbps;
      dump_metrics m
    end
    else
      let mbps =
        Uls_bench.Microbench.bandwidth ~total ~kind:(kind_of_stack stack) ~msg ()
      in
      Printf.printf "stream bandwidth (%d-byte messages): %.1f Mb/s\n" msg mbps
  in
  Cmd.v
    (Cmd.info "bandwidth" ~doc:"Unidirectional stream bandwidth")
    Term.(const run $ stack $ msg $ total $ metrics_flag)

(* --- chaos -------------------------------------------------------------- *)

let chaos_cmd =
  let stacks =
    Arg.(value & opt_all stack_conv [ `Ds; `Tcp ] & info [ "stack" ]
           ~docv:"STACK"
           ~doc:"Stack(s) to sweep (repeatable): tcp | tcp-tuned | ds | \
                 ds-base | dg. Default: ds and tcp.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
           ~doc:"Fault-engine seed; same seed, same fault sequence.")
  in
  let total =
    Arg.(value & opt int (4 * 1024 * 1024) & info [ "total" ] ~docv:"BYTES"
           ~doc:"Bytes streamed per run.")
  in
  let msg =
    Arg.(value & opt int 16_384 & info [ "msg" ] ~docv:"BYTES"
           ~doc:"Bytes per write.")
  in
  let rates =
    Arg.(value & opt (list float) Uls_bench.Chaos.default_rates
         & info [ "loss" ] ~docv:"P,P,..."
             ~doc:"Frame-loss probabilities to sweep (fractions, not %).")
  in
  let chaos_kind = function
    | `Emp ->
      prerr_endline "ulsbench chaos: raw EMP has no sockets stream; use ds/dg";
      exit 124
    | `Tcp -> Uls_bench.Chaos.Tcp Uls_tcp.Config.default
    | `Tcp_tuned ->
      Uls_bench.Chaos.Tcp Uls_tcp.Config.(with_buffers default 262_144)
    | `Ds -> Uls_bench.Chaos.Sub Uls_substrate.Options.data_streaming_enhanced
    | `Ds_base -> Uls_bench.Chaos.Sub Uls_substrate.Options.data_streaming
    | `Dg -> Uls_bench.Chaos.Sub Uls_substrate.Options.datagram
  in
  let run stacks seed total msg rates =
    let failures = ref 0 in
    List.iter
      (fun stack ->
        let kind = chaos_kind stack in
        let rows = Uls_bench.Chaos.sweep ~seed ~rates ~total ~msg ~kind () in
        Uls_bench.Chaos.print_table Format.std_formatter ~kind rows;
        List.iter
          (fun r ->
            if not (r.Uls_bench.Chaos.completed && r.Uls_bench.Chaos.intact)
            then incr failures)
          rows)
      stacks;
    if !failures > 0 then begin
      Printf.eprintf "ulsbench chaos: %d run(s) hung or corrupted data\n"
        !failures;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Stream a checksummed payload under seeded frame loss and print \
          goodput/retransmission tables per loss rate; exits non-zero if \
          any run hangs or delivers corrupt bytes")
    Term.(const run $ stacks $ seed $ total $ msg $ rates)

(* --- serve -------------------------------------------------------------- *)

let serve_cmd =
  let open Uls_bench in
  let stack =
    Arg.(value & opt stack_conv `Ds & info [ "stack" ] ~docv:"STACK"
           ~doc:"tcp | tcp-tuned | ds | ds-base | dg. For serving, ds maps \
                 to the substrate's server preset (small per-connection \
                 buffers, piggy-backed acks).")
  in
  let serve_kind = function
    | `Emp ->
      prerr_endline "ulsbench serve: raw EMP has no sockets stream; use ds/dg";
      exit 124
    | `Tcp -> Chaos.Tcp Uls_tcp.Config.default
    | `Tcp_tuned -> Chaos.Tcp Uls_tcp.Config.(with_buffers default 262_144)
    | `Ds -> Chaos.Sub Uls_substrate.Options.server
    | `Ds_base -> Chaos.Sub Uls_substrate.Options.data_streaming
    | `Dg -> Chaos.Sub Uls_substrate.Options.datagram
  in
  let workload_conv =
    let parse = function
      | "echo" -> Ok Load.Echo
      | "http" -> Ok Load.Http
      | s -> Error (`Msg (Printf.sprintf "unknown workload %S" s))
    in
    let print fmt w =
      Format.pp_print_string fmt
        (match w with Load.Echo -> "echo" | Load.Http -> "http")
    in
    Arg.conv (parse, print)
  in
  let conns =
    Arg.(value & opt int 64 & info [ "conns" ] ~docv:"N"
           ~doc:"Concurrent client connections.")
  in
  let requests =
    Arg.(value & opt int 8 & info [ "requests" ] ~docv:"N"
           ~doc:"Requests per connection.")
  in
  let size =
    Arg.(value & opt int 512 & info [ "size" ] ~docv:"BYTES"
           ~doc:"Echo payload / HTTP response-body size.")
  in
  let workload =
    Arg.(value & opt workload_conv Load.Echo & info [ "workload" ]
           ~docv:"W" ~doc:"echo | http")
  in
  let open_loop =
    Arg.(value & opt (some float) None & info [ "rate" ] ~docv:"REQ/S"
           ~doc:"Open-loop arrival rate (requests/s, fleet-wide). \
                 Without it the fleet runs closed-loop.")
  in
  let think =
    Arg.(value & opt float 0. & info [ "think" ] ~docv:"US"
           ~doc:"Mean think time between requests (us, closed loop).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
                    ~doc:"Rng seed; same seed, same run.") in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P"
           ~doc:"Uniform frame-loss probability (fault engine).")
  in
  let clients =
    Arg.(value & opt int 0 & info [ "clients" ] ~docv:"N"
           ~doc:"Client nodes the fleet spreads over (0 = auto).")
  in
  let backlog =
    Arg.(value & opt int 0 & info [ "backlog" ] ~docv:"N"
           ~doc:"Server listen backlog (0 = auto).")
  in
  let workers =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
           ~doc:"Scheduler worker fibers.")
  in
  let max_inflight =
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Admission limit; accepts beyond it are shed with an \
                 explicit reject (0 = unlimited).")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"CI mode: pinned-seed runs over ds and tcp, echo and http, \
                 plus a determinism double-run; non-zero exit on any hang, \
                 lost request, mismatch or divergence.")
  in
  let build_config stack workload open_loop ~conns ~requests ~size ~think
      ~seed ~loss ~clients ~backlog ~workers ~max_inflight ~match_engine
      ~event_sched =
    let kind = serve_kind stack in
    let client_nodes =
      if clients > 0 then clients else max 2 (min 8 ((conns + 511) / 512))
    in
    let backlog = if backlog > 0 then backlog else max 64 (min conns 1024) in
    let sched =
      if workers = Uls_server.Sched.default_config.workers && max_inflight = 0
      then None
      else
        Some
          {
            Uls_server.Sched.default_config with
            workers;
            max_inflight = (if max_inflight = 0 then max_int else max_inflight);
            reject =
              (match workload with
              | Load.Http -> Some Uls_server.Server.http_reject
              | Load.Echo -> None);
          }
    in
    {
      Load.kind;
      workload;
      loop = (match open_loop with None -> Load.Closed | Some r -> Load.Open r);
      conns;
      requests_per_conn = requests;
      size;
      think = think *. 1e3;
      seed;
      loss;
      client_nodes;
      backlog;
      sched;
      match_engine;
      event_sched;
    }
  in
  let run_one ?on_metrics cfg =
    let r = Load.run ?on_metrics cfg in
    Load.print_report Format.std_formatter cfg r;
    r
  in
  let serve_json cfg (r : Load.report) =
    emit_json ~file:"BENCH_serve.json"
      [
        ("bench", json_str "serve");
        ("stack", json_str (Chaos.kind_name cfg.Load.kind));
        ("workload",
         json_str
           (match cfg.Load.workload with Load.Echo -> "echo" | Load.Http -> "http"));
        ("loop",
         json_str
           (match cfg.Load.loop with
           | Load.Closed -> "closed"
           | Load.Open r -> Printf.sprintf "open@%.0f" r));
        ("match",
         json_str
           (match cfg.Load.kind with
           | Chaos.Tcp _ -> "n/a" (* kernel path: no NIC tag matching *)
           | Chaos.Sub _ ->
             Uls_nic.Match_list.engine_name cfg.Load.match_engine));
        ("sched", json_str (sched_name cfg.Load.event_sched));
        ("conns", json_int cfg.Load.conns);
        ("requests_per_conn", json_int cfg.Load.requests_per_conn);
        ("size", json_int cfg.Load.size);
        ("seed", json_int cfg.Load.seed);
        ("loss", json_float cfg.Load.loss);
        ("sent", json_int r.Load.sent);
        ("completed", json_int r.Load.completed);
        ("shed", json_int r.Load.shed);
        ("refused", json_int r.Load.refused);
        ("errors", json_int r.Load.errors);
        ("mismatches", json_int r.Load.mismatches);
        ("peak_open", json_int r.Load.peak_open);
        ("elapsed_ms", json_float r.Load.elapsed_ms);
        ("rps", json_float r.Load.rps);
        ("mean_us", json_float r.Load.mean_us);
        ("p50_us", json_float r.Load.p50_us);
        ("p95_us", json_float r.Load.p95_us);
        ("p99_us", json_float r.Load.p99_us);
        ("p999_us", json_float r.Load.p999_us);
        ("intact", json_bool r.Load.intact);
        ("completed_run", json_bool r.Load.completed_run);
      ]
  in
  let run stack conns requests size workload open_loop think seed loss clients
      backlog workers max_inflight match_engine event_sched smoke metrics json =
    let on_metrics = if metrics then Some dump_metrics else None in
    if smoke then begin
      (* Pinned-seed CI matrix; flags other than --metrics and --sched
         are ignored. *)
      let failures = ref 0 in
      let smoke_config ?(match_engine = Uls_nic.Match_list.Hashed) stack
          workload =
        build_config stack workload None ~conns:128 ~requests:4 ~size:256
          ~think:0. ~seed:42 ~loss:0. ~clients:2 ~backlog:0 ~workers:4
          ~max_inflight:0 ~match_engine ~event_sched
      in
      let check r =
        if
          not
            (r.Load.completed_run && r.Load.intact && r.Load.errors = 0
           && r.Load.shed = 0 && r.Load.refused = 0 && r.Load.mismatches = 0
           && r.Load.completed = r.Load.sent)
        then incr failures
      in
      List.iter
        (fun (st, w) -> check (run_one ?on_metrics (smoke_config st w)))
        [ (`Ds, Load.Echo); (`Ds, Load.Http); (`Tcp, Load.Echo);
          (`Tcp, Load.Http) ];
      (* Determinism: same seed, byte-identical report. *)
      let cfg = smoke_config `Ds Load.Echo in
      let a = Load.run cfg and b = Load.run cfg in
      check a;
      if a <> b then begin
        prerr_endline "ulsbench serve --smoke: seeded runs diverged";
        incr failures
      end;
      (* Match-engine ablation at the 512-conn row (where the linear
         walk's O(posted descriptors) cost begins to bite): hashed must
         be at least as fast as linear on both stacks, and the hashed
         row must be schedule-deterministic. *)
      let scale_config stack engine =
        build_config stack Load.Echo None ~conns:512 ~requests:2 ~size:256
          ~think:0. ~seed:42 ~loss:0. ~clients:4 ~backlog:0 ~workers:4
          ~max_inflight:0 ~match_engine:engine ~event_sched
      in
      (* Match-engine ablation only on the substrate stack: TCP takes the
         kernel receive path and never touches the NIC tag matcher, so a
         linear-vs-hashed pair there is the same run counted twice. *)
      let lin = run_one ?on_metrics (scale_config `Ds Uls_nic.Match_list.Linear) in
      let hsh = run_one ?on_metrics (scale_config `Ds Uls_nic.Match_list.Hashed) in
      check lin;
      check hsh;
      if hsh.Load.rps < lin.Load.rps *. 0.999 then begin
        Printf.eprintf
          "ulsbench serve --smoke: hashed slower than linear at 512 \
           conns (%.0f vs %.0f req/s)\n"
          hsh.Load.rps lin.Load.rps;
        incr failures
      end;
      (* TCP at the same 512-conn point, once. *)
      check (run_one ?on_metrics (scale_config `Tcp Uls_nic.Match_list.Hashed));
      let cfg = scale_config `Ds Uls_nic.Match_list.Hashed in
      let a = Load.run cfg and b = Load.run cfg in
      check a;
      if a <> b then begin
        prerr_endline
          "ulsbench serve --smoke: hashed 512-conn seeded runs diverged";
        incr failures
      end;
      if !failures > 0 then begin
        Printf.eprintf "ulsbench serve --smoke: %d failure(s)\n" !failures;
        exit 1
      end;
      print_endline "serve smoke: ok"
    end
    else begin
      let cfg =
        build_config stack workload open_loop ~conns ~requests ~size ~think
          ~seed ~loss ~clients ~backlog ~workers ~max_inflight ~match_engine
          ~event_sched
      in
      let r = run_one ?on_metrics cfg in
      if json then serve_json cfg r;
      if not (r.Load.completed_run && r.Load.intact) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Event-driven server under a client fleet: echo or keep-alive \
          HTTP over the readiness engine + connection scheduler, driven \
          open- or closed-loop; prints throughput and latency percentiles")
    Term.(const run $ stack $ conns $ requests $ size $ workload $ open_loop
          $ think $ seed $ loss $ clients $ backlog $ workers $ max_inflight
          $ match_engine_flag $ sched_flag `Wheel $ smoke $ metrics_flag
          $ Arg.(value & flag & info [ "json" ]
                   ~doc:"Append a JSON record to BENCH_serve.json."))

(* --- fabric ------------------------------------------------------------- *)

let fabric_cmd =
  let open Uls_bench in
  let stack =
    Arg.(value & opt stack_conv `Ds & info [ "stack" ] ~docv:"STACK"
           ~doc:"tcp | tcp-tuned | ds | ds-base | dg.")
  in
  let fabric_kind = function
    | `Emp ->
      prerr_endline "ulsbench fabric: raw EMP has no sockets stream; use ds/dg";
      exit 124
    | `Tcp -> Chaos.Tcp Uls_tcp.Config.default
    | `Tcp_tuned -> Chaos.Tcp Uls_tcp.Config.(with_buffers default 262_144)
    | `Ds -> Chaos.Sub Uls_substrate.Options.server
    | `Ds_base -> Chaos.Sub Uls_substrate.Options.data_streaming
    | `Dg -> Chaos.Sub Uls_substrate.Options.datagram
  in
  (* "CELL@MS": cell id and a virtual-time instant in milliseconds. *)
  let cell_at_conv =
    let parse s =
      match String.split_on_char '@' s with
      | [ c; ms ] -> (
        try Ok (int_of_string c, int_of_string ms)
        with _ -> Error (`Msg (Printf.sprintf "bad CELL@MS %S" s)))
      | _ -> Error (`Msg (Printf.sprintf "bad CELL@MS %S" s))
    in
    let print fmt (c, ms) =
      Format.pp_print_string fmt (Printf.sprintf "%d@%d" c ms)
    in
    Arg.conv (parse, print)
  in
  let cells =
    Arg.(value & opt int 4 & info [ "cells" ] ~docv:"K"
           ~doc:"Server cells behind the balancer.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"N"
           ~doc:"SO_REUSEPORT listener shards (schedulers) per cell.")
  in
  let conns =
    Arg.(value & opt int 2048 & info [ "conns" ] ~docv:"N"
           ~doc:"Total connection arrivals over the run.")
  in
  let requests =
    Arg.(value & opt int 2 & info [ "requests" ] ~docv:"N"
           ~doc:"Requests per connection.")
  in
  let size =
    Arg.(value & opt int 256 & info [ "size" ] ~docv:"BYTES"
           ~doc:"Echo payload size.")
  in
  let rate =
    Arg.(value & opt float 4_000. & info [ "rate" ] ~docv:"CONN/S"
           ~doc:"Open-loop connection arrival rate, fleet-wide.")
  in
  let think =
    Arg.(value & opt float 0. & info [ "think" ] ~docv:"US"
           ~doc:"Mean think time between a connection's requests (us); \
                 raises concurrency (rate x lifetime).")
  in
  let clients =
    Arg.(value & opt int 0 & info [ "clients" ] ~docv:"N"
           ~doc:"Client nodes (0 = auto: enough to keep per-node NIC \
                 match walks short).")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED"
                    ~doc:"Rng seed; same seed, same run.") in
  let loss =
    Arg.(value & opt float 0. & info [ "loss" ] ~docv:"P"
           ~doc:"Uniform frame-loss probability.")
  in
  let max_inflight =
    Arg.(value & opt int 0 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Per-shard admission limit (0 = unlimited).")
  in
  let backlog =
    Arg.(value & opt int 128 & info [ "backlog" ] ~docv:"N"
           ~doc:"Per-cell listen backlog. Every posted backlog \
                 descriptor is walked by the cell NIC on each RX \
                 frame; keep it modest.")
  in
  let vnodes =
    Arg.(value & opt int 128 & info [ "vnodes" ] ~docv:"N"
           ~doc:"Consistent-hash virtual nodes per cell.")
  in
  let kill =
    Arg.(value & opt (some cell_at_conv) None & info [ "kill" ] ~docv:"CELL@MS"
           ~doc:"Pause this cell's node (all frames dropped) at this \
                 virtual time; the health checker must heal the ring.")
  in
  let drain =
    Arg.(value & opt (some cell_at_conv) None & info [ "drain" ] ~docv:"CELL@MS"
           ~doc:"Gracefully drain this cell at this virtual time.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"CI mode: pinned-seed cell x stack matrix plus a \
                 kill-failover run and a determinism double-run; non-zero \
                 exit on any hang, mismatch or divergence.")
  in
  let auto_clients cells conns = max 4 (min 64 (max cells ((conns + 2047) / 2048) * 4)) in
  let build ~stack ~cells ~shards ~conns ~requests ~size ~rate ~think ~clients
      ~seed ~loss ~max_inflight ~backlog ~vnodes ~kill ~drain ~match_engine
      ~event_sched =
    {
      Fleet.default with
      kind = fabric_kind stack;
      match_engine;
      event_sched;
      cells;
      shards;
      conns;
      requests_per_conn = requests;
      size;
      rate;
      think = think *. 1e3;
      client_nodes = (if clients > 0 then clients else auto_clients cells conns);
      seed;
      loss;
      max_inflight;
      backlog;
      vnodes;
      kill = Option.map (fun (c, ms) -> (c, Uls_engine.Time.ms ms)) kill;
      drain = Option.map (fun (c, ms) -> (c, Uls_engine.Time.ms ms)) drain;
    }
  in
  let fabric_json (cfg : Fleet.config) (r : Fleet.report) =
    emit_json ~file:"BENCH_fabric.json"
      ([
         ("bench", json_str "fabric");
         ("stack", json_str (Chaos.kind_name cfg.Fleet.kind));
         ("cells", json_int cfg.Fleet.cells);
         ("shards", json_int cfg.Fleet.shards);
         ("match",
          json_str
            (match cfg.Fleet.kind with
            | Chaos.Tcp _ -> "n/a" (* kernel path: no NIC tag matching *)
            | Chaos.Sub _ ->
              Uls_nic.Match_list.engine_name cfg.Fleet.match_engine));
         ("sched", json_str (sched_name cfg.Fleet.event_sched));
         ("conns", json_int cfg.Fleet.conns);
         ("requests_per_conn", json_int cfg.Fleet.requests_per_conn);
         ("size", json_int cfg.Fleet.size);
         ("rate", json_float cfg.Fleet.rate);
         ("seed", json_int cfg.Fleet.seed);
         ("loss", json_float cfg.Fleet.loss);
         ("kill", json_bool (cfg.Fleet.kill <> None));
         ("drain", json_bool (cfg.Fleet.drain <> None));
         ("established", json_int r.Fleet.established);
         ("completed", json_int r.Fleet.completed);
         ("shed", json_int r.Fleet.shed);
         ("refused", json_int r.Fleet.refused);
         ("resets", json_int r.Fleet.resets);
         ("errors", json_int r.Fleet.errors);
         ("mismatches", json_int r.Fleet.mismatches);
         ("remapped", json_int r.Fleet.remapped);
         ("peak_open", json_int r.Fleet.peak_open);
         ("peak_cell_open", json_int r.Fleet.peak_cell_open);
         ("healed_at_ms", json_float r.Fleet.healed_at_ms);
         ("drained_at_ms", json_float r.Fleet.drained_at_ms);
         ("elapsed_ms", json_float r.Fleet.elapsed_ms);
         ("rps", json_float r.Fleet.rps);
         ("mean_us", json_float r.Fleet.mean_us);
         ("p50_us", json_float r.Fleet.p50_us);
         ("p95_us", json_float r.Fleet.p95_us);
         ("p99_us", json_float r.Fleet.p99_us);
         ("p999_us", json_float r.Fleet.p999_us);
         ("intact", json_bool r.Fleet.intact);
         ("completed_run", json_bool r.Fleet.completed_run);
       ])
  in
  let run stack cells shards conns requests size rate think clients seed loss
      max_inflight backlog vnodes kill drain match_engine event_sched smoke
      metrics json =
    let on_metrics = if metrics then Some dump_metrics else None in
    if smoke then begin
      (* Pinned-seed CI matrix: cells x stacks, plus one kill-failover
         run; flags other than --metrics and --sched are ignored. *)
      let failures = ref 0 in
      let base stack cells =
        build ~stack ~cells ~shards:2 ~conns:256 ~requests:2 ~size:128
          ~rate:8_000. ~think:0. ~clients:4 ~seed:42 ~loss:0. ~max_inflight:0
          ~backlog:128 ~vnodes:64 ~kill:None ~drain:None
          ~match_engine:Uls_nic.Match_list.Hashed ~event_sched
      in
      let check name ?(allow_failures = false) (r : Fleet.report) =
        let ok =
          r.Fleet.completed_run && r.Fleet.intact
          && (allow_failures
             || r.Fleet.refused = 0 && r.Fleet.resets = 0
                && r.Fleet.errors = 0)
        in
        if not ok then begin
          Printf.eprintf "ulsbench fabric --smoke: %s failed\n" name;
          incr failures
        end
      in
      List.iter
        (fun (st, cells) ->
          let cfg = base st cells in
          Format.printf "--- fabric smoke: %s cells=%d@."
            (Chaos.kind_name cfg.Fleet.kind) cells;
          let r = Fleet.run ?on_metrics cfg in
          Fleet.print_report Format.std_formatter cfg r;
          check (Printf.sprintf "%s/%d-cell"
                   (Chaos.kind_name cfg.Fleet.kind) cells) r)
        [ (`Ds, 1); (`Ds, 4); (`Tcp, 1); (`Tcp, 4) ];
      (* Kill a cell mid-load on both stacks: the ring must heal and the
         run must complete with failures confined to the killed cell. *)
      List.iter
        (fun st ->
          let cfg =
            { (base st 4) with Fleet.kill = Some (1, Uls_engine.Time.ms 8) }
          in
          Format.printf "--- fabric smoke: %s kill-failover@."
            (Chaos.kind_name cfg.Fleet.kind);
          let r = Fleet.run ?on_metrics cfg in
          Fleet.print_report Format.std_formatter cfg r;
          check
            (Printf.sprintf "%s/kill" (Chaos.kind_name cfg.Fleet.kind))
            ~allow_failures:true r;
          if r.Fleet.healed_at_ms < 0. then begin
            prerr_endline "ulsbench fabric --smoke: ring never healed";
            incr failures
          end)
        [ `Ds; `Tcp ];
      (* Determinism: same seed, byte-identical report. *)
      let cfg = base `Ds 4 in
      let a = Fleet.run cfg and b = Fleet.run cfg in
      check "determinism" a;
      if a <> b then begin
        prerr_endline "ulsbench fabric --smoke: seeded runs diverged";
        incr failures
      end;
      if !failures > 0 then begin
        Printf.eprintf "ulsbench fabric --smoke: %d failure(s)\n" !failures;
        exit 1
      end;
      print_endline "fabric smoke: ok"
    end
    else begin
      let cfg =
        build ~stack ~cells ~shards ~conns ~requests ~size ~rate ~think
          ~clients ~seed ~loss ~max_inflight ~backlog ~vnodes ~kill ~drain
          ~match_engine ~event_sched
      in
      let r = Fleet.run ?on_metrics cfg in
      Fleet.print_report Format.std_formatter cfg r;
      if json then fabric_json cfg r;
      if not (r.Fleet.completed_run && r.Fleet.intact) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "fabric"
       ~doc:
         "Sharded serving fabric: L4-balanced server cells (consistent \
          hashing, SO_REUSEPORT shards) under an open-loop connection \
          fleet, with optional mid-load cell kill or drain")
    Term.(const run $ stack $ cells $ shards $ conns $ requests $ size $ rate
          $ think $ clients $ seed $ loss $ max_inflight $ backlog $ vnodes
          $ kill $ drain $ match_engine_flag $ sched_flag `Wheel $ smoke
          $ metrics_flag
          $ Arg.(value & flag & info [ "json" ]
                   ~doc:"Append a JSON record to BENCH_fabric.json."))

(* --- trace -------------------------------------------------------------- *)

let trace_cmd =
  let experiment =
    Arg.(value & pos 0 string "pingpong" & info [] ~docv:"EXPERIMENT"
           ~doc:"pingpong | bandwidth | barrier")
  in
  let stack =
    Arg.(value & opt stack_conv `Ds & info [ "stack" ] ~docv:"STACK"
           ~doc:"emp | tcp | tcp-tuned | ds | ds-base | dg")
  in
  let size =
    Arg.(value & opt int 4 & info [ "size" ] ~docv:"BYTES"
           ~doc:"Message size (pingpong).")
  in
  let msg =
    Arg.(value & opt int 65_536 & info [ "msg" ] ~docv:"BYTES"
           ~doc:"Message size (bandwidth).")
  in
  let nodes =
    Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"N"
           ~doc:"Group size (barrier).")
  in
  let iters = Arg.(value & opt int 10 & info [ "iters" ] ~doc:"Iterations.") in
  let out =
    Arg.(value & opt (some string) None & info [ "out"; "o" ] ~docv:"FILE"
           ~doc:"Write the Chrome-trace JSON here instead of stdout.")
  in
  let run experiment stack size msg nodes iters out metrics =
    let kind = kind_of_stack stack in
    let summary, tr, m =
      match experiment with
      | "pingpong" ->
        let us, tr, m =
          Uls_bench.Microbench.ping_pong_observed ~iters ~kind ~size ()
        in
        (Printf.sprintf "%d-byte one-way latency: %.2f us" size us, tr, m)
      | "bandwidth" ->
        let mbps, tr, m =
          Uls_bench.Microbench.bandwidth_observed ~total:(4 * 1024 * 1024)
            ~kind ~msg ()
        in
        (Printf.sprintf "stream bandwidth: %.1f Mb/s" mbps, tr, m)
      | "barrier" ->
        let us, tr, m =
          Uls_bench.Microbench.barrier_latency_observed ~iters
            ~alg:Uls_collective.Group.Binomial_tree ~nodes ()
        in
        (Printf.sprintf "%d-node barrier: %.2f us" nodes us, tr, m)
      | other ->
        Printf.eprintf "ulsbench trace: unknown experiment %S\n" other;
        exit 124
    in
    let json = Uls_engine.Trace.to_chrome_json tr in
    (* Keep stdout pure JSON when no --out was given, so the output can
       be piped straight into a validator or chrome://tracing. *)
    (match out with
    | None ->
      print_string json;
      Printf.eprintf "%s (%d trace events)\n" summary
        (List.length (Uls_engine.Trace.events tr))
    | Some file ->
      let oc = open_out file in
      output_string oc json;
      close_out oc;
      Printf.printf "%s (%d trace events -> %s)\n" summary
        (List.length (Uls_engine.Trace.events tr))
        file);
    if metrics then dump_metrics m
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run a benchmark with structured tracing enabled and emit \
          Chrome-trace JSON (load in chrome://tracing or Perfetto)")
    Term.(const run $ experiment $ stack $ size $ msg $ nodes $ iters $ out
          $ metrics_flag)

(* --- collectives -------------------------------------------------------- *)

let alg_conv =
  let parse = function
    | "linear" -> Ok Uls_collective.Group.Linear
    | "binomial" -> Ok Uls_collective.Group.Binomial_tree
    | "recdbl" -> Ok Uls_collective.Group.Recursive_doubling
    | "nic" -> Ok Uls_collective.Group.Nic_forward
    | s -> Error (`Msg (Printf.sprintf "unknown algorithm %S" s))
  in
  let print fmt a =
    Format.pp_print_string fmt (Uls_collective.Group.algorithm_name a)
  in
  Arg.conv (parse, print)

let coll_op_conv =
  let parse = function
    | "barrier" -> Ok `Barrier
    | "bcast" -> Ok `Bcast
    | "allreduce" -> Ok `Allreduce
    | s -> Error (`Msg (Printf.sprintf "unknown collective op %S" s))
  in
  let print fmt o =
    Format.pp_print_string fmt
      (match o with
      | `Barrier -> "barrier"
      | `Bcast -> "bcast"
      | `Allreduce -> "allreduce")
  in
  Arg.conv (parse, print)

let collective_cmd =
  let op =
    Arg.(value & opt coll_op_conv `Barrier & info [ "op" ] ~docv:"OP"
           ~doc:"barrier | bcast | allreduce")
  in
  let alg =
    Arg.(value & opt alg_conv Uls_collective.Group.Binomial_tree
         & info [ "alg" ] ~docv:"ALG" ~doc:"linear | binomial | recdbl | nic")
  in
  let nodes =
    Arg.(value & opt int 8 & info [ "nodes" ] ~docv:"N" ~doc:"Group size.")
  in
  let size =
    Arg.(value & opt int 65_536 & info [ "size" ] ~docv:"BYTES"
           ~doc:"Payload size (bcast/allreduce only).")
  in
  let iters = Arg.(value & opt int 10 & info [ "iters" ] ~doc:"Iterations.") in
  let run op alg nodes size iters metrics =
    if nodes < 1 then begin
      prerr_endline "ulsbench: --nodes must be at least 1";
      exit 124
    end;
    let alg_name = Uls_collective.Group.algorithm_name alg in
    match op with
    | `Barrier ->
      if metrics then begin
        let us, _, m =
          Uls_bench.Microbench.barrier_latency_observed ~iters ~alg ~nodes ()
        in
        Printf.printf "%d-node %s barrier: %.2f us\n" nodes alg_name us;
        dump_metrics m
      end
      else
        let us = Uls_bench.Microbench.barrier_latency ~iters ~alg ~nodes () in
        Printf.printf "%d-node %s barrier: %.2f us\n" nodes alg_name us
    | (`Bcast | `Allreduce) as op ->
      let op_name =
        match op with `Bcast -> "bcast" | `Allreduce -> "allreduce"
      in
      if metrics then begin
        let mbps, _, m =
          Uls_bench.Microbench.coll_bandwidth_observed ~iters ~op ~alg ~nodes
            ~size ()
        in
        Printf.printf "%d-node %s %s (%d B): %.1f Mb/s\n" nodes alg_name
          op_name size mbps;
        dump_metrics m
      end
      else
        let mbps =
          Uls_bench.Microbench.coll_bandwidth ~iters ~op ~alg ~nodes ~size ()
        in
        Printf.printf "%d-node %s %s (%d B): %.1f Mb/s\n" nodes alg_name
          op_name size mbps
  in
  Cmd.v
    (Cmd.info "collective"
       ~doc:"Collective latency/bandwidth over an EMP group")
    Term.(const run $ op $ alg $ nodes $ size $ iters $ metrics_flag)

(* --- engine ------------------------------------------------------------ *)

let engine_cmd =
  let open Uls_bench in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Append one JSON record per (scenario, scheduler) run to \
                 BENCH_engine.json.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"CI gate: heap and wheel must dispatch identical event \
                 counts per scenario, the wheel must beat the heap by at \
                 least 2x events/sec on the 65536-conn fabric shape, no \
                 run may allocate more than 14 minor words per dispatched \
                 event (allocation sanitizer), and against the committed \
                 baseline every event count must match exactly and no \
                 per-scenario wheel-vs-heap speedup may regress by more \
                 than 20%.")
  in
  let baseline =
    Arg.(value & opt string "BENCH_engine.json"
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Committed pinned-seed baseline the --check gate reads.")
  in
  let engine_json (r : Engine_bench.row) =
    emit_json ~file:"BENCH_engine.json"
      [
        ("bench", json_str "engine");
        ("scenario", json_str r.Engine_bench.scenario);
        ("sched", json_str (sched_name r.Engine_bench.sched));
        ("conns", json_int r.Engine_bench.conns);
        ("events", json_int r.Engine_bench.events);
        ("elapsed_s", json_float r.Engine_bench.elapsed_s);
        ("events_per_sec", json_float r.Engine_bench.events_per_sec);
        ("minor_words_per_event",
         json_float r.Engine_bench.minor_words_per_event);
      ]
  in
  let run json check baseline_file =
    let rows = Engine_bench.run_all () in
    let find sched name =
      List.find
        (fun r ->
          r.Engine_bench.scenario = name && r.Engine_bench.sched = sched)
        rows
    in
    Format.printf "%-14s %8s %10s %10s %14s %9s %8s@." "scenario" "conns"
      "sched" "events" "events/sec" "speedup" "mw/ev";
    List.iter
      (fun sh ->
        let name = sh.Engine_bench.sh_name in
        let h = find `Heap name and w = find `Wheel name in
        List.iter
          (fun (r : Engine_bench.row) ->
            Format.printf "%-14s %8d %10s %10d %14.0f %9s %8.2f@."
              r.Engine_bench.scenario r.Engine_bench.conns
              (sched_name r.Engine_bench.sched)
              r.Engine_bench.events r.Engine_bench.events_per_sec
              (if r.Engine_bench.sched = `Wheel then
                 Printf.sprintf "%.2fx"
                   (r.Engine_bench.events_per_sec
                   /. h.Engine_bench.events_per_sec)
               else "")
              r.Engine_bench.minor_words_per_event)
          [ h; w ])
      Engine_bench.shapes;
    if json then List.iter engine_json rows;
    if check then begin
      let failures = ref 0 in
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            Printf.eprintf "ulsbench engine --check: %s\n" msg;
            incr failures)
          fmt
      in
      (* Dispatch parity: the wheel is a drop-in replacement, so both
         schedulers must execute exactly the same events. *)
      List.iter
        (fun sh ->
          let name = sh.Engine_bench.sh_name in
          let h = find `Heap name and w = find `Wheel name in
          if h.Engine_bench.events <> w.Engine_bench.events then
            fail "%s: heap dispatched %d events, wheel %d" name
              h.Engine_bench.events w.Engine_bench.events)
        Engine_bench.shapes;
      (* Allocation sanitizer: the steady-state cost is the workload's
         own per-cycle closures (measured 9-12.2 minor words/event
         across shapes); the dispatch loop — including the analysis
         instrumentation hooks when no tracker is attached — must add
         nothing. 14.0 leaves noise headroom yet trips on a single
         boxed allocation per event on the heavier shapes. *)
      let alloc_ceiling = 14.0 in
      List.iter
        (fun (r : Engine_bench.row) ->
          if r.Engine_bench.minor_words_per_event > alloc_ceiling then
            fail
              "%s/%s: %.2f minor words/event exceeds the %.1f allocation \
               ceiling (engine hot path started allocating)"
              r.Engine_bench.scenario
              (sched_name r.Engine_bench.sched)
              r.Engine_bench.minor_words_per_event alloc_ceiling)
        rows;
      (* The tentpole claim: O(1) queue ops must show at fleet scale. *)
      let h = find `Heap "fabric-65536" and w = find `Wheel "fabric-65536" in
      if
        w.Engine_bench.events_per_sec
        < 2.0 *. h.Engine_bench.events_per_sec
      then
        fail "fabric-65536: wheel %.0f ev/s < 2x heap %.0f ev/s"
          w.Engine_bench.events_per_sec h.Engine_bench.events_per_sec;
      (* Baseline gates. Event counts are deterministic, so they must
         match the committed records exactly; raw events/sec is machine-
         dependent, so the regression gate runs on the wheel-vs-heap
         speedup ratio (machine-independent to first order): each
         scenario's measured ratio must reach 80% of the baseline's. *)
      let base = read_records baseline_file in
      let base_field recs key =
        List.filter_map
          (fun r ->
            match
              ( List.assoc_opt "bench" r,
                List.assoc_opt "scenario" r,
                List.assoc_opt "sched" r,
                List.assoc_opt key r )
            with
            | Some "engine", Some sc, Some sd, Some v -> Some ((sc, sd), v)
            | _ -> None)
          recs
      in
      let last_of assoc k =
        List.fold_left
          (fun acc (k', v) -> if k' = k then Some v else acc)
          None assoc
      in
      let base_events = base_field base "events" in
      let base_eps = base_field base "events_per_sec" in
      if base_events = [] then
        Printf.printf
          "engine --check: no baseline records in %s; skipping baseline \
           gates\n"
          baseline_file
      else
        List.iter
          (fun sh ->
            let name = sh.Engine_bench.sh_name in
            let h = find `Heap name and w = find `Wheel name in
            List.iter
              (fun (r : Engine_bench.row) ->
                match
                  last_of base_events (name, sched_name r.Engine_bench.sched)
                with
                | Some v when int_of_string v <> r.Engine_bench.events ->
                  fail "%s/%s: %d events, baseline %s (event structure \
                        changed — recapture the baseline deliberately)"
                    name
                    (sched_name r.Engine_bench.sched)
                    r.Engine_bench.events v
                | _ -> ())
              [ h; w ];
            match
              ( last_of base_eps (name, "heap"),
                last_of base_eps (name, "wheel") )
            with
            | Some bh, Some bw ->
              let bh = float_of_string bh and bw = float_of_string bw in
              if bh > 0. && h.Engine_bench.events_per_sec > 0. then begin
                let base_ratio = bw /. bh in
                let ratio =
                  w.Engine_bench.events_per_sec
                  /. h.Engine_bench.events_per_sec
                in
                if ratio < 0.8 *. base_ratio then
                  fail
                    "%s: wheel/heap speedup %.2fx regressed more than 20%% \
                     from baseline %.2fx"
                    name ratio base_ratio
              end
            | _ -> ())
          Engine_bench.shapes;
      if !failures > 0 then begin
        Printf.eprintf "ulsbench engine --check: %d failure(s)\n" !failures;
        exit 1
      end;
      print_endline "engine check: ok"
    end
  in
  Cmd.v
    (Cmd.info "engine"
       ~doc:
         "Event-core throughput: events/sec through the simulator on \
          synthetic timer workloads (pingpong, serve-512, fabric-4096, \
          fabric-65536), binary heap vs hierarchical timing wheel")
    Term.(const run $ json $ check $ baseline)

(* --- rings: firehose + storm ------------------------------------------- *)

let busy_poll_flag =
  Arg.(value & flag & info [ "busy-poll" ]
         ~doc:"Endpoint tx ring in busy-poll mode: the NIC-side fetch \
               loop spins instead of sleeping between doorbells.")

let batch_flag default =
  Arg.(value & opt int default
       & info [ "batch" ] ~docv:"N"
           ~doc:"Submission batch depth: descriptors per doorbell. \
                 $(b,1) is the per-call ablation (byte-identical to the \
                 pre-ring path).")

let firehose_cmd =
  let open Uls_bench in
  let d = Firehose.default in
  let sinks =
    Arg.(value & opt int d.Firehose.sinks
         & info [ "sinks" ] ~docv:"N" ~doc:"Sink nodes (source is node 0).")
  in
  let count =
    Arg.(value & opt int d.Firehose.count
         & info [ "count" ] ~docv:"N" ~doc:"Messages per sink.")
  in
  let size =
    Arg.(value & opt int d.Firehose.size
         & info [ "size" ] ~docv:"BYTES" ~doc:"Payload bytes per message.")
  in
  let seed =
    Arg.(value & opt int d.Firehose.seed & info [ "seed" ] ~doc:"RNG seed.")
  in
  let loss =
    Arg.(value & opt float 0.
         & info [ "loss" ] ~docv:"P"
             ~doc:"Uniform frame-loss probability (the rings chaos leg).")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Append a JSON record to BENCH_rings.json.")
  in
  let check =
    Arg.(value & flag & info [ "check" ]
           ~doc:"CI gate: pinned-seed runs must be intact and \
                 deterministic, batch=32 must reach at least 2x the \
                 batch=1 pps on the small-message shape, the NIC \
                 doorbell/mailbox-fetch audit pair must agree, the 2% \
                 loss chaos leg must stay byte-exact, and pps must not \
                 regress below 80% of the committed baseline.")
  in
  let baseline =
    Arg.(value & opt string "BENCH_rings.json"
         & info [ "baseline" ] ~docv:"FILE"
             ~doc:"Committed pinned-seed baseline the --check gate reads.")
  in
  let firehose_json (cfg : Firehose.config) (r : Firehose.report) =
    emit_json ~file:"BENCH_rings.json"
      [
        ("bench", json_str "firehose");
        ("match",
         json_str (Uls_nic.Match_list.engine_name cfg.Firehose.match_engine));
        ("sched", json_str (sched_name cfg.Firehose.event_sched));
        ("sinks", json_int cfg.Firehose.sinks);
        ("count", json_int cfg.Firehose.count);
        ("size", json_int cfg.Firehose.size);
        ("batch", json_int cfg.Firehose.batch);
        ("busy_poll", json_bool cfg.Firehose.busy_poll);
        ("seed", json_int cfg.Firehose.seed);
        ("loss", json_float cfg.Firehose.loss);
        ("messages", json_int r.Firehose.messages);
        ("delivered", json_int r.Firehose.delivered);
        ("mismatches", json_int r.Firehose.mismatches);
        ("elapsed_ms", json_float r.Firehose.elapsed_ms);
        ("pps", json_float r.Firehose.pps);
        ("mbps", json_float r.Firehose.mbps);
        ("doorbells", json_int r.Firehose.doorbells);
        ("mailbox_fetches", json_int r.Firehose.mailbox_fetches);
        ("ring_submitted", json_int r.Firehose.ring_submitted);
        ("ring_doorbells", json_int r.Firehose.ring_doorbells);
        ("faults", json_int r.Firehose.faults_injected);
        ("retransmits", json_int r.Firehose.retransmits);
        ("intact", json_bool r.Firehose.intact);
        ("completed_run", json_bool r.Firehose.completed_run);
      ]
  in
  let run sinks count size batch busy_poll seed loss match_engine event_sched
      metrics json check baseline_file =
    let on_metrics = if metrics then Some dump_metrics else None in
    let run_one cfg =
      let r = Firehose.run ?on_metrics cfg in
      Firehose.print_report Format.std_formatter cfg r;
      r
    in
    let cfg =
      {
        Firehose.sinks;
        count;
        size;
        batch;
        busy_poll;
        seed;
        loss;
        match_engine;
        event_sched;
      }
    in
    if check then begin
      let failures = ref 0 in
      let fail fmt =
        Printf.ksprintf
          (fun msg ->
            Printf.eprintf "ulsbench firehose --check: %s\n" msg;
            incr failures)
          fmt
      in
      let gate_cfg =
        { Firehose.default with Firehose.match_engine; event_sched }
      in
      let sane tag (r : Firehose.report) =
        if not (r.Firehose.completed_run && r.Firehose.intact) then
          fail "%s: run incomplete or corrupt (%d/%d delivered, %d \
                mismatches)"
            tag r.Firehose.delivered r.Firehose.messages
            r.Firehose.mismatches
      in
      (* Doorbell audit: once a run drains, every NIC mailbox fetch must
         be explained by a doorbell — the metric pair that caught the TX
         double-charge. At batch depth > 1 a doorbell rung while the
         firmware is mid-fetch coalesces into that fetch, so doorbells
         may lead fetches by a handful; a fetch with no doorbell (or a
         large gap) still fails. Batch=1 serialises doorbell/fetch pairs
         and must agree exactly. *)
      let audit ?(exact = false) tag (r : Firehose.report) =
        let d = r.Firehose.doorbells and f = r.Firehose.mailbox_fetches in
        let bad = if exact then d <> f else f > d || d - f > 16 in
        if bad then
          fail "%s: doorbell audit: %d doorbells vs %d mailbox fetches"
            tag d f
      in
      let r32 = run_one { gate_cfg with Firehose.batch = 32 } in
      sane "batch=32" r32;
      audit "batch=32" r32;
      let r1 = run_one { gate_cfg with Firehose.batch = 1 } in
      sane "batch=1" r1;
      audit ~exact:true "batch=1" r1;
      (* The tentpole claim: one doorbell per batch must show up as
         small-message throughput. *)
      if r1.Firehose.pps > 0. && r32.Firehose.pps < 2.0 *. r1.Firehose.pps
      then
        fail "batch=32 pps %.0f < 2x batch=1 pps %.0f" r32.Firehose.pps
          r1.Firehose.pps;
      (* Busy-poll delivers the same bytes without any doorbells. *)
      let rbp =
        run_one { gate_cfg with Firehose.batch = 32; busy_poll = true }
      in
      sane "busy-poll" rbp;
      if rbp.Firehose.ring_doorbells <> 0 then
        fail "busy-poll: tx ring rang %d doorbells"
          rbp.Firehose.ring_doorbells;
      if rbp.Firehose.delivered <> r32.Firehose.delivered then
        fail "busy-poll delivered %d, wakeup delivered %d"
          rbp.Firehose.delivered r32.Firehose.delivered;
      (* Chaos leg: 2% uniform loss, still byte-exact. *)
      let rloss =
        run_one { gate_cfg with Firehose.batch = 32; loss = 0.02 }
      in
      sane "loss=0.02" rloss;
      if rloss.Firehose.faults_injected = 0 then
        fail "loss=0.02: fault engine injected nothing";
      (* Determinism: same config, byte-identical report. *)
      let a = Firehose.run { gate_cfg with Firehose.batch = 32 } in
      if a <> r32 then fail "batch=32 seeded runs diverged";
      (* Baseline gate: pps is virtual-time throughput — deterministic —
         so a regression below 80% of the committed record is a real
         cost-model or path regression, not machine noise. *)
      let base = read_records baseline_file in
      let base_pps =
        List.fold_left
          (fun acc r ->
            match
              ( List.assoc_opt "bench" r,
                List.assoc_opt "batch" r,
                List.assoc_opt "size" r,
                List.assoc_opt "busy_poll" r,
                List.assoc_opt "loss" r,
                List.assoc_opt "pps" r )
            with
            | ( Some "firehose",
                Some "32",
                Some s,
                Some "false",
                Some l,
                Some pps )
              when int_of_string s = gate_cfg.Firehose.size
                   && float_of_string l = 0. ->
              Some (float_of_string pps)
            | _ -> acc)
          None base
      in
      (match base_pps with
      | None ->
        Printf.printf
          "firehose --check: no baseline record in %s; skipping baseline \
           gate\n"
          baseline_file
      | Some b ->
        if b > 0. && r32.Firehose.pps < 0.8 *. b then
          fail "batch=32 pps %.0f below 80%% of baseline %.0f"
            r32.Firehose.pps b);
      if !failures > 0 then begin
        Printf.eprintf "ulsbench firehose --check: %d failure(s)\n"
          !failures;
        exit 1
      end;
      print_endline "firehose check: ok"
    end
    else begin
      let r = run_one cfg in
      if json then firehose_json cfg r;
      if not (r.Firehose.completed_run && r.Firehose.intact) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "firehose"
       ~doc:
         "Small-message datagram firehose through the ring-based batched \
          I/O subsystem: one source sprays patterned datagrams at N \
          sinks, one doorbell per --batch submissions; prints pps and \
          the NIC doorbell/fetch audit pair")
    Term.(const run $ sinks $ count $ size $ batch_flag d.Firehose.batch
          $ busy_poll_flag $ seed $ loss $ match_engine_flag
          $ sched_flag `Wheel $ metrics_flag $ json $ check $ baseline)

let storm_cmd =
  let open Uls_bench in
  let d = Storm.default in
  let scanners =
    Arg.(value & opt int d.Storm.scanners
         & info [ "scanners" ] ~docv:"N" ~doc:"Scanner (prober) nodes.")
  in
  let targets =
    Arg.(value & opt int d.Storm.targets
         & info [ "targets" ] ~docv:"N" ~doc:"Target (listener) nodes.")
  in
  let window =
    Arg.(value & opt int d.Storm.window
         & info [ "window" ] ~docv:"W"
             ~doc:"Probe slots (concurrent probes) per scanner.")
  in
  let probes =
    Arg.(value & opt int d.Storm.probes
         & info [ "probes" ] ~docv:"N" ~doc:"Probes per scanner.")
  in
  let backlog =
    Arg.(value & opt int d.Storm.backlog
         & info [ "backlog" ] ~docv:"N" ~doc:"Per-target listen backlog.")
  in
  let seed =
    Arg.(value & opt int d.Storm.seed & info [ "seed" ] ~doc:"RNG seed.")
  in
  let json =
    Arg.(value & flag & info [ "json" ]
           ~doc:"Append a JSON record to BENCH_rings.json.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"CI mode: pinned-seed batch=32 and batch=1 runs plus a \
                 determinism double-run; non-zero exit on any hang, \
                 unanswered probe, refusal or divergence.")
  in
  let storm_json (cfg : Storm.config) (r : Storm.report) =
    emit_json ~file:"BENCH_rings.json"
      [
        ("bench", json_str "storm");
        ("match",
         json_str (Uls_nic.Match_list.engine_name cfg.Storm.match_engine));
        ("sched", json_str (sched_name cfg.Storm.event_sched));
        ("scanners", json_int cfg.Storm.scanners);
        ("targets", json_int cfg.Storm.targets);
        ("window", json_int cfg.Storm.window);
        ("probes", json_int cfg.Storm.probes);
        ("batch", json_int cfg.Storm.batch);
        ("busy_poll", json_bool cfg.Storm.busy_poll);
        ("seed", json_int cfg.Storm.seed);
        ("attempts", json_int r.Storm.attempts);
        ("accepted", json_int r.Storm.accepted);
        ("refused", json_int r.Storm.refused);
        ("server_accepts", json_int r.Storm.server_accepts);
        ("elapsed_ms", json_float r.Storm.elapsed_ms);
        ("attempts_per_sec", json_float r.Storm.attempts_per_sec);
        ("mpps", json_float r.Storm.mpps);
        ("doorbells", json_int r.Storm.doorbells);
        ("mailbox_fetches", json_int r.Storm.mailbox_fetches);
        ("intact", json_bool r.Storm.intact);
        ("completed_run", json_bool r.Storm.completed_run);
      ]
  in
  let run_one cfg =
    let r = Storm.run cfg in
    Storm.print_report Format.std_formatter cfg r;
    r
  in
  let run scanners targets window probes batch backlog busy_poll seed
      match_engine event_sched json smoke =
    let cfg =
      {
        Storm.scanners;
        targets;
        window;
        probes;
        batch;
        backlog;
        busy_poll;
        seed;
        match_engine;
        event_sched;
      }
    in
    if smoke then begin
      let failures = ref 0 in
      let gate_cfg = { Storm.default with Storm.match_engine; event_sched } in
      let check tag (r : Storm.report) =
        if not (r.Storm.completed_run && r.Storm.intact) then begin
          Printf.eprintf
            "ulsbench storm --smoke: %s incomplete or refused (%d/%d \
             answered, %d refused)\n"
            tag
            (r.Storm.accepted + r.Storm.refused)
            r.Storm.attempts r.Storm.refused;
          incr failures
        end
      in
      let r32 = run_one { gate_cfg with Storm.batch = 32 } in
      check "batch=32" r32;
      check "batch=1" (run_one { gate_cfg with Storm.batch = 1 });
      let a = Storm.run { gate_cfg with Storm.batch = 32 } in
      if a <> r32 then begin
        prerr_endline "ulsbench storm --smoke: seeded runs diverged";
        incr failures
      end;
      if !failures > 0 then begin
        Printf.eprintf "ulsbench storm --smoke: %d failure(s)\n" !failures;
        exit 1
      end;
      print_endline "storm smoke: ok"
    end
    else begin
      let r = run_one cfg in
      if json then storm_json cfg r;
      if not (r.Storm.completed_run && r.Storm.intact) then exit 1
    end
  in
  Cmd.v
    (Cmd.info "storm"
       ~doc:
         "ZMap-style connection storm: windowed raw-EMP probe engines \
          fire batched connection attempts at substrate listeners, one \
          doorbell per --batch probes; prints connect-attempt rate")
    Term.(const run $ scanners $ targets $ window $ probes
          $ batch_flag d.Storm.batch $ backlog $ busy_poll_flag $ seed
          $ match_engine_flag $ sched_flag `Wheel $ json $ smoke)

(* --- races ------------------------------------------------------------- *)

let races_cmd =
  let seeds =
    Arg.(value & opt int 16 & info [ "seeds" ] ~docv:"K"
           ~doc:"Perturbed runs per scenario (seeds 0..K-1) besides the \
                 FIFO baseline.")
  in
  let smoke =
    Arg.(value & flag & info [ "smoke" ]
           ~doc:"CI mode: stop a buggy fixture's seed loop at the first \
                 catching seed instead of running all K.")
  in
  let scenario =
    Arg.(value & opt (some string) None & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Run a single scenario by name.")
  in
  let replay =
    Arg.(value & opt (some int) None & info [ "replay" ] ~docv:"SEED"
           ~doc:"Replay --scenario under one seed and dump its \
                 fingerprint, violations, and any deadlock report.")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose"; "v" ]
           ~doc:"Full divergence/violation listings.")
  in
  let explore_flag =
    Arg.(value & flag & info [ "explore" ]
           ~doc:"Systematic DPOR-style exploration instead of seed \
                 sampling: enumerate same-timestamp schedules for every \
                 scenario with an exploration bound, with independence \
                 pruning and state-fingerprint dedup. Prints honest \
                 coverage (exhaustive vs preemption-bounded) and, for \
                 flagged schedules, the racing operation pair.")
  in
  let replay_schedule =
    Arg.(value & opt (some string) None
         & info [ "replay-schedule" ] ~docv:"ID"
             ~doc:"Replay --scenario under one explorer schedule id \
                   (e.g. 0.4.1, as printed by --explore) and dump its \
                   fingerprint, violations, racing pairs, and any \
                   deadlock report.")
  in
  let max_runs =
    Arg.(value & opt (some int) None & info [ "max-runs" ] ~docv:"N"
           ~doc:"Override the per-scenario explorer run budget.")
  in
  let max_preempt =
    Arg.(value & opt (some int) None & info [ "max-preemptions" ] ~docv:"P"
           ~doc:"Override the per-scenario preemption cap.")
  in
  let module A = Uls_analysis.Race in
  let module X = Uls_analysis.Explore in
  let module S = Uls_analysis.Scenarios in
  let find_or_die name =
    match S.find name with
    | Some sc -> sc
    | None ->
      Printf.eprintf "ulsbench races: unknown scenario %S (have: %s)\n" name
        (String.concat ", " (List.map (fun sc -> sc.S.sc_name) S.all));
      exit 124
  in
  let dump_outcome ?(pairs = []) (o : S.outcome) =
    print_endline (Uls_analysis.Fingerprint.to_string o.S.fingerprint);
    List.iter
      (fun v -> print_endline (Uls_engine.Invariant.string_of_violation v))
      o.S.violations;
    List.iter (fun p -> print_endline (Uls_analysis.Hb.render_pair p)) pairs;
    (match o.S.deadlock with
    | Some rep -> print_endline (Uls_analysis.Deadlock.render rep)
    | None -> ());
    if o.S.violations <> [] || o.S.deadlock <> None then exit 1
  in
  let run seeds smoke scenario replay explore replay_schedule max_runs
      max_preempt verbose sched =
    match (replay, replay_schedule) with
    | Some _, Some _ ->
      prerr_endline "ulsbench races: --replay and --replay-schedule conflict";
      exit 124
    | Some seed, None ->
      let name =
        match scenario with
        | Some n -> n
        | None ->
          prerr_endline "ulsbench races: --replay requires --scenario";
          exit 124
      in
      dump_outcome (A.replay ~sched (find_or_die name) ~seed)
    | None, Some id ->
      let name =
        match scenario with
        | Some n -> n
        | None ->
          prerr_endline "ulsbench races: --replay-schedule requires --scenario";
          exit 124
      in
      let o, pairs = X.replay ~sched (find_or_die name) ~schedule:id in
      dump_outcome ~pairs o
    | None, None ->
      let scenarios =
        match scenario with
        | Some name -> [ find_or_die name ]
        | None -> S.all
      in
      let failures = ref 0 in
      if explore then begin
        (* Systematic mode: scenarios without a bound are skipped (their
           schedule tree is not explorable at useful cost), and that is
           reported rather than silently passed. *)
        List.iter
          (fun sc ->
            match sc.S.sc_bound with
            | None ->
              Printf.printf "%-20s %-7s skipped: no exploration bound\n"
                sc.S.sc_name
                (if sc.S.sc_buggy then "[buggy]" else "[clean]")
            | Some _ ->
              let v = X.explore ~sched ?max_runs ?max_preemptions:max_preempt sc in
              print_endline (X.render ~verbose v);
              let ok = if sc.S.sc_buggy then X.flagged v else X.clean v in
              if not ok then begin
                incr failures;
                Printf.printf "FAIL: %s %s\n" sc.S.sc_name
                  (if sc.S.sc_buggy then
                     "— systematic exploration no longer finds this seeded \
                      regression"
                   else "— not schedule-independent")
              end)
          scenarios;
        if !failures > 0 then exit 1;
        print_endline "races --explore: all scenarios OK"
      end
      else begin
        List.iter
          (fun sc ->
            let v =
              if smoke && sc.S.sc_buggy then
                A.run_until_flagged ~max_seeds:seeds ~sched sc
              else A.run_scenario ~seeds ~sched sc
            in
            print_endline (A.render ~verbose v);
            let ok = if sc.S.sc_buggy then A.flagged v else A.clean v in
            if not ok then begin
              incr failures;
              Printf.printf "FAIL: %s %s\n" sc.S.sc_name
                (if sc.S.sc_buggy then
                   "— the detector no longer catches this seeded regression"
                 else "— not schedule-independent")
            end)
          scenarios;
        if !failures > 0 then exit 1;
        print_endline "races: all scenarios OK"
      end
  in
  Cmd.v
    (Cmd.info "races"
       ~doc:"Schedule-perturbation race detection over the invariant suite: \
             seed sampling by default, systematic DPOR-style enumeration \
             with --explore")
    Term.(const run $ seeds $ smoke $ scenario $ replay $ explore_flag
          $ replay_schedule $ max_runs $ max_preempt $ verbose
          $ sched_flag `Heap)

let () =
  let doc = "Sockets-over-EMP reproduction benchmarks (simulated testbed)" in
  let info = Cmd.info "ulsbench" ~version:"1.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            figures_cmd;
            latency_cmd;
            bandwidth_cmd;
            collective_cmd;
            chaos_cmd;
            engine_cmd;
            firehose_cmd;
            storm_cmd;
            serve_cmd;
            fabric_cmd;
            trace_cmd;
            races_cmd;
          ]))
